"""Declarative rules over the fact store, and the incremental solver.

Each rule derives one fact kind for one routine and declares what it
read (the dependency edges the store uses for invalidation).  The rule
table is the paper's stage structure made explicit:

* ``routine`` — stages 1-3 output (identity, extents, entry points);
* ``cfg`` — stage 4 (CFG build with delay normalization and
  indirect-jump slicing baked in);
* ``liveness``/``cti``/``dispatch``/``islands``/``callsites`` — the
  per-routine analyses tools consume, all derived from the CFG fact.

:func:`solve` drains the store's dirty set as a fixpoint: dirty ``cfg``
facts force a fresh CFG build (``cfg.builds`` counts them, and
``facts.rederived`` counts exactly these); every other dirty fact is
refreshed from the surviving CFG payloads without building anything
(``facts.refreshed``).  When a rebuilt CFG changes its *interprocedural
signature* — escape targets, dispatch-table extents, unreached-suffix
shape — the edit may have moved routine boundaries, so the solver
escalates to a full re-refinement (``facts.escalations``); a
byte-identical or intra-routine edit never escalates.
"""

import hashlib

from repro.core.instruction import instruction_for
from repro.isa.base import Category
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span

_C_REDERIVED = _metrics.counter("facts.rederived")
_C_REFRESHED = _metrics.counter("facts.refreshed")
_C_ESCALATIONS = _metrics.counter("facts.escalations")

# Derivation order: a fact kind only reads kinds to its left.
KIND_ORDER = ("routine", "cfg", "liveness", "cti", "dispatch", "islands",
              "callsites")
DERIVED_KINDS = KIND_ORDER[1:]


# ----------------------------------------------------------------------
# Rules: (payload, deps) for one routine each
# ----------------------------------------------------------------------

def _derive_routine(executable, routine, store):
    from repro.core.symtab_refine import routine_identity

    return routine_identity(routine), ()


def _derive_cfg(executable, routine, store):
    cfg = routine.control_flow_graph()
    return cfg.to_summary(), (("routine", routine.start),)


def _derive_liveness(executable, routine, store):
    liveness = routine.control_flow_graph().live_registers()
    return liveness.to_summary(), (("cfg", routine.start),)


def _derive_cti(executable, routine, store):
    payload = ensure(executable, store, "cfg", routine)
    return ({"cti_in_slot": int(payload["cti_in_slot"]),
             "incomplete": int(payload["incomplete"])},
            (("cfg", routine.start),))


def _derive_dispatch(executable, routine, store):
    from repro.core.analysis.indirect import table_extent

    payload = ensure(executable, store, "cfg", routine)
    tables = [list(table_extent(info)) for info in payload["indirect"]
              if info["status"] == "table"]
    return sorted(tables), (("cfg", routine.start),)


def _derive_islands(executable, routine, store):
    payload = ensure(executable, store, "cfg", routine)
    islands = set(payload["data_addrs"])
    for addr, size in ensure(executable, store, "dispatch", routine):
        for offset in range(0, size, 4):
            islands.add(addr + offset)
    return sorted(islands), (("cfg", routine.start),
                             ("dispatch", routine.start))


def _derive_callsites(executable, routine, store):
    """Outgoing call sites, from the CFG *payload* (no CFG object).

    Re-deriving a caller's call-graph fact after a callee edit must not
    rebuild the caller's CFG, so this rule decodes block tails straight
    from the summary.  Resolved targets add a dependency on the target
    routine's identity fact — the transitive-invalidation edge.
    """
    payload = ensure(executable, store, "cfg", routine)
    codec = executable.codec
    sites = []
    for kind, start, addrs, _editable, _cti in payload["blocks"]:
        if kind != "normal" or not addrs:
            continue
        addr = addrs[-1]
        inst = instruction_for(codec, executable.word_at(addr))
        if inst.category is Category.CALL:
            sites.append({"addr": addr, "kind": "call",
                          "target": inst.target(addr)})
        elif inst.category is Category.CALL_INDIRECT:
            sites.append({"addr": addr, "kind": "indirect", "target": None})
    for info in payload["indirect"]:
        if info["status"] == "tailcall":
            addrs = payload["blocks"][info["block"]][2]
            sites.append({"addr": addrs[-1], "kind": "tailcall",
                          "target": info["literal"]})
    deps = {("cfg", routine.start)}
    for site in sites:
        target = site["target"]
        if target is not None:
            container = executable.routine_at(target)
            if container is not None:
                site["routine"] = container.start
                deps.add(("routine", container.start))
    return sites, sorted(deps)


DERIVE = {
    "routine": _derive_routine,
    "cfg": _derive_cfg,
    "liveness": _derive_liveness,
    "cti": _derive_cti,
    "dispatch": _derive_dispatch,
    "islands": _derive_islands,
    "callsites": _derive_callsites,
}


def ensure(executable, store, kind, routine):
    """The fact's payload, deriving (and recording) it when absent or
    dirty.  The lazy entry point analyses use (e.g. the call graph)."""
    payload = store.get(kind, routine.start)
    if payload is not None and not store.is_dirty(kind, routine.start):
        return payload
    payload, deps = DERIVE[kind](executable, routine, store)
    store.put(kind, routine.start, payload, deps)
    return payload


# ----------------------------------------------------------------------
# Population (cold path) and summary views
# ----------------------------------------------------------------------

def assert_routines(executable, store):
    """Assert the identity fact of every refined routine."""
    for routine in executable.all_routines():
        store.put("routine", routine.start,
                  DERIVE["routine"](executable, routine, store)[0])


def populate(executable, store, kinds=DERIVED_KINDS):
    """Derive *kinds* for every routine (the batch fixpoint).

    Runs the stages in rule order so each derivation finds its inputs
    already asserted; used on the cold path and after an escalation.
    """
    with _span("facts.populate", routines=len(executable.all_routines())):
        assert_routines(executable, store)
        for kind in kinds:
            for routine in executable.all_routines():
                ensure(executable, store, kind, routine)


def attach_view(store, routine):
    """Attach the routine's analysis summary assembled from its facts,
    so later ``control_flow_graph()`` calls restore instead of build."""
    identity = store.get("routine", routine.start)
    cfg = store.get("cfg", routine.start)
    liveness = store.get("liveness", routine.start)
    if identity is None or cfg is None or liveness is None:
        return None
    view = dict(identity)
    view["cfg"] = cfg
    view["liveness"] = liveness
    routine.analysis_summary = view
    return view


def text_hash(executable, start, end):
    """Short content hash of the text bytes in [start, end)."""
    text = executable.image.sections[".text"]
    lo = start - text.vaddr
    return hashlib.sha256(bytes(text.data[lo:lo + (end - start)])) \
        .hexdigest()[:16]


# ----------------------------------------------------------------------
# The incremental solver
# ----------------------------------------------------------------------

def _interproc_signature(payload):
    """What other routines can observe of this CFG.

    Escape targets (where control leaves the extent), dispatch-table
    extents (claimed data other extents must avoid), and the
    unreached-suffix shape (stage 4's hidden-routine source).  An edit
    that preserves this signature cannot perturb refinement's routine
    set, so its effects stay local to the routine's own facts.
    """
    escapes = sorted({edge[4] for edge in payload["edges"]
                      if edge[4] is not None})
    tables = sorted((info["table_addr"], len(info["targets"]))
                    for info in payload["indirect"]
                    if info["status"] == "table")
    return (tuple(escapes), tuple(tables), bool(payload["unreached"]),
            bool(payload["incomplete"]))


def _escalate(executable, store):
    """Full re-refinement: the edit moved interprocedural structure.

    Re-runs symbol-table refinement from scratch (clearing claimed data
    — stale dispatch claims would poison discovery) and re-derives
    every fact kind that had been derived before.
    """
    from repro.core.executable import RoutineList
    from repro.core.symtab_refine import refine_symbol_table

    _C_ESCALATIONS.inc()
    derived = {kind for kind, _ in store.dirty_facts()} \
        | {fact[0] for fact in store._facts}
    kinds = tuple(kind for kind in DERIVED_KINDS if kind in derived)
    store.clear()
    executable._claimed = set()
    for routine in executable.all_routines():
        routine.analysis_summary = None
        routine.delete_control_flow_graph()
    routines, hidden = refine_symbol_table(executable)
    executable._routines = RoutineList(routines)
    executable._hidden = RoutineList(hidden)
    populate(executable, store, kinds=kinds)
    for routine in executable.all_routines():
        attach_view(store, routine)


def solve(executable, store, max_rounds=8):
    """Drain the dirty set; returns (rederived, refreshed) counts.

    Processes dirty facts in rule order so a re-derived CFG is in place
    before its dependents refresh.  Escalates (and restarts as a full
    populate) when a rebuilt CFG's interprocedural signature changed.
    """
    rederived = refreshed = 0
    with _span("facts.solve") as sp:
        for _ in range(max_rounds):
            dirty = store.dirty_facts()
            if not dirty:
                break
            by_start = {r.start: r for r in executable.all_routines()}
            for kind in KIND_ORDER:
                for key in sorted(key for k, key in dirty if k == kind):
                    if not store.is_dirty(kind, key):
                        continue
                    routine = by_start.get(key)
                    if routine is None:
                        store.drop(kind, key)
                        continue
                    if kind == "cfg":
                        old = store.get("cfg", key)
                        routine.analysis_summary = None
                        routine.delete_control_flow_graph()
                        payload, deps = _derive_cfg(executable, routine,
                                                    store)
                        store.put("cfg", key, payload, deps)
                        rederived += 1
                        _C_REDERIVED.inc()
                        if old is not None and _interproc_signature(old) \
                                != _interproc_signature(payload):
                            _escalate(executable, store)
                            sp.set(escalated=True, rederived=rederived)
                            return rederived, refreshed
                    else:
                        payload, deps = DERIVE[kind](executable, routine,
                                                     store)
                        store.put(kind, key, payload, deps)
                        refreshed += 1
                        _C_REFRESHED.inc()
            for key in {key for k, key in dirty if k in ("cfg", "liveness")}:
                routine = by_start.get(key)
                if routine is not None:
                    attach_view(store, routine)
        sp.set(rederived=rederived, refreshed=refreshed)
    return rederived, refreshed
