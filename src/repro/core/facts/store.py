"""The fact store: facts, dependencies, dirty-set propagation.

A fact is ``(kind, key) -> payload`` where *key* is a routine start
address and *payload* is JSON-ready.  Facts carry explicit dependency
edges; invalidating a fact walks the reverse edges and marks every
transitively dependent fact dirty.  The store never recomputes
anything itself — :mod:`repro.core.facts.rules` drains the dirty set.

Versions count payload *changes* (not re-derivations): a fact that is
re-derived to an identical payload keeps its version, so cache-warm
consumers can cheaply ask "did anything I read actually change?".
"""

from repro.obs import metrics as _metrics

_C_DERIVED = _metrics.counter("facts.derived")
_C_INVALIDATED = _metrics.counter("facts.invalidated")


class FactStore:
    """Facts keyed by ``(kind, key)`` with deps, rdeps, and a dirty set."""

    def __init__(self):
        self._facts = {}  # (kind, key) -> payload
        self._versions = {}  # (kind, key) -> int (payload changes)
        self._deps = {}  # fact -> frozenset of facts it reads
        self._rdeps = {}  # fact -> set of facts that read it
        self._dirty = set()

    def __len__(self):
        return len(self._facts)

    def __contains__(self, fact_id):
        return tuple(fact_id) in self._facts

    # ------------------------------------------------------------------
    # Assertion and retrieval
    # ------------------------------------------------------------------
    def put(self, kind, key, payload, deps=()):
        """Assert a fact; returns True when the payload changed.

        Re-asserting marks the fact clean and rewires its dependency
        edges; the version bumps only on a real payload change.
        """
        fact = (kind, key)
        changed = self._facts.get(fact) != payload or fact not in self._facts
        self._facts[fact] = payload
        if changed:
            self._versions[fact] = self._versions.get(fact, 0) + 1
        new_deps = frozenset(tuple(dep) for dep in deps)
        for dep in self._deps.get(fact, frozenset()) - new_deps:
            self._rdeps.get(dep, set()).discard(fact)
        for dep in new_deps:
            self._rdeps.setdefault(dep, set()).add(fact)
        self._deps[fact] = new_deps
        self._dirty.discard(fact)
        _C_DERIVED.inc()
        return changed

    def get(self, kind, key):
        return self._facts.get((kind, key))

    def version(self, kind, key):
        """Payload-change count for a fact (0 = never asserted)."""
        return self._versions.get((kind, key), 0)

    def is_dirty(self, kind, key):
        return (kind, key) in self._dirty

    def dirty_facts(self):
        """Snapshot of the dirty fact-id set."""
        return set(self._dirty)

    def facts_of_kind(self, kind):
        return {key: payload for (k, key), payload in self._facts.items()
                if k == kind}

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate(self, kind, key):
        """Mark a fact and everything reachable from it dirty.

        Returns the set of fact ids newly marked; counts each in
        ``facts.invalidated``.
        """
        marked = set()
        work = [(kind, key)]
        while work:
            fact = work.pop()
            if fact in marked:
                continue
            if fact not in self._facts and fact != (kind, key):
                continue
            marked.add(fact)
            work.extend(self._rdeps.get(fact, ()))
        marked = {f for f in marked if f in self._facts}
        fresh = marked - self._dirty
        self._dirty |= marked
        _C_INVALIDATED.inc(len(fresh))
        return fresh

    def drop(self, kind, key):
        """Forget a fact entirely (a routine that no longer exists)."""
        fact = (kind, key)
        self._facts.pop(fact, None)
        self._versions.pop(fact, None)
        self._dirty.discard(fact)
        for dep in self._deps.pop(fact, frozenset()):
            self._rdeps.get(dep, set()).discard(fact)
        self._rdeps.pop(fact, None)

    def clear(self):
        self._facts.clear()
        self._versions.clear()
        self._deps.clear()
        self._rdeps.clear()
        self._dirty.clear()

    # ------------------------------------------------------------------
    # Persistence (the cache blob's "facts" table)
    # ------------------------------------------------------------------
    def to_summary(self):
        """JSON-ready fact table: facts plus dependency edges.

        The dirty set is not persisted — a summary is only taken of a
        fully solved store, and hydration starts clean by construction.
        """
        facts = [[kind, key, self._facts[(kind, key)]]
                 for kind, key in sorted(self._facts)]
        deps = []
        for fact in sorted(self._facts):
            dep_set = self._deps.get(fact)
            if dep_set:
                deps.append([list(fact),
                             sorted(list(dep) for dep in dep_set)])
        return {"facts": facts, "deps": deps}

    @classmethod
    def from_summary(cls, data):
        """Rebuild a store from :meth:`to_summary` output.

        Returns None when *data* is structurally malformed — the caller
        treats that as a cache miss, never a partial hydrate.
        """
        if not isinstance(data, dict):
            return None
        store = cls()
        try:
            for kind, key, payload in data["facts"]:
                if not isinstance(kind, str) or not isinstance(key, int):
                    return None
                store._facts[(kind, key)] = payload
                store._versions[(kind, key)] = 1
            for fact_entry, deps in data.get("deps", ()):
                kind, key = fact_entry
                fact = (kind, key)
                if fact not in store._facts:
                    return None
                dep_set = frozenset((dk, dkey) for dk, dkey in deps)
                if any(dep not in store._facts for dep in dep_set):
                    return None  # dangling edge: invalidation would skip it
                store._deps[fact] = dep_set
                for dep in dep_set:
                    store._rdeps.setdefault(dep, set()).add(fact)
        except (KeyError, TypeError, ValueError):
            return None
        return store
