"""Per-routine analysis facts with incremental invalidation.

EEL's refinement pipeline (paper section 3.1) is a batch pass: every
edit re-pays symbol-table refinement, CFG feedback, and indirect-jump
resolution in full.  Datalog Disassembly shows the same heuristics
compose as declarative rules over per-routine facts; this package
recasts the analyses that way so an interactive edit session only
re-derives what an edit actually touched:

* :mod:`repro.core.facts.store` — the :class:`FactStore`: facts keyed
  by ``(kind, routine start)`` with a dependency graph and a dirty set;
* :mod:`repro.core.facts.rules` — the rules that derive each fact kind
  and the fixpoint solver that drains the dirty set.

Fact kinds (all JSON-ready, all keyed by routine start address):

=========== ===========================================================
``routine`` identity: name, extent, entry points, hidden flag
``cfg``     the CFG summary (blocks, edges, indirect resolutions)
``liveness`` the per-block live-register solution
``cti``     delay-slot CTI flag (routines tools must refuse to edit)
``dispatch`` dispatch-table extents claimed by indirect-jump slicing
``islands`` data-island addresses (claimed data inside the extent)
``callsites`` outgoing calls/tailcalls with resolved target routines
=========== ===========================================================

Dependencies encode the paper's stage structure: ``cfg`` reads
``routine`` (stage 4 reads stages 1-3), everything else reads ``cfg``,
and ``callsites`` additionally reads the ``routine`` fact of every
resolved target — which is exactly the edge that makes a callee edit
invalidate its callers' call-graph facts.
"""

from repro.core.facts.store import FactStore

__all__ = ["FactStore"]
