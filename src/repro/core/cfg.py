"""Control-flow graphs with explicit delayed-control normalization.

The CFG is EEL's primary program representation (paper section 3.3).
Delay-slot instructions are hoisted into their own basic blocks attached
to the edges along which they execute, so all instructions *appear* to
have no internal control flow (Figure 3):

* non-annulled conditional branch — the delay instruction is duplicated
  into a delay block on *both* outgoing edges;
* annulled conditional branch — delay block on the taken edge only;
* ``ba,a`` — the delay slot never executes and is not part of the block;
* call — delay block, then a distinguished zero-length *call surrogate*
  block standing in for the callee, then the continuation;
* return — delay block, then the exit pseudo-block.

Uneditable blocks and edges (call/return/indirect-jump delay slots,
surrogates, entry/exit) are marked so tools pick an editable spot; the
paper reports 15-20% of blocks/edges are uneditable.
"""

from repro.core.instruction import instruction_for
from repro.isa.base import Category
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span

_C_BUILDS = _metrics.counter("cfg.builds")
_C_RESTORES = _metrics.counter("cache.restored_cfgs")
_C_BLOCKS = _metrics.counter("cfg.blocks")
_C_EDGES = _metrics.counter("cfg.edges")
_C_DELAY_HOISTS = _metrics.counter("cfg.delay_hoists")
_C_EDITABLE_BLOCKS = _metrics.counter("cfg.editable_blocks")
_C_EDITABLE_EDGES = _metrics.counter("cfg.editable_edges")
_C_INCOMPLETE = _metrics.counter("cfg.incomplete")
_H_BLOCKS = _metrics.histogram("cfg.blocks_per_routine")

# Block kinds.
BK_NORMAL = "normal"
BK_DELAY = "delay"
BK_SURROGATE = "surrogate"
BK_ENTRY = "entry"
BK_EXIT = "exit"

# Edge kinds.
EK_FALL = "fall"
EK_TAKEN = "taken"
EK_UNCOND = "uncond"
EK_DELAY = "delay"  # control-transfer block -> its delay block
EK_CALL = "call"  # delay block -> call surrogate
EK_CRETURN = "creturn"  # call surrogate -> continuation
EK_COMPUTED = "computed"  # resolved indirect-jump target
EK_ENTRY = "entry"
EK_EXIT = "exit"
EK_ESCAPE = "escape"  # direct transfer out of the routine


class CFGError(Exception):
    pass


class Edge:
    """A control-flow edge; tools may attach snippets along it."""

    __slots__ = ("src", "dst", "kind", "editable", "snippets", "escape_target")

    def __init__(self, src, dst, kind, editable=True, escape_target=None):
        self.src = src
        self.dst = dst
        self.kind = kind
        self.editable = editable
        self.snippets = []
        self.escape_target = escape_target

    def add_code_along(self, snippet):
        """Schedule *snippet* to execute whenever this edge is traversed."""
        if not self.editable:
            raise CFGError("edge %s is not editable" % self)
        self.snippets.append(snippet)

    def __repr__(self):
        return "Edge(%s->%s %s)" % (self.src.id, self.dst.id, self.kind)


class BasicBlock:
    """Single-entry straight-line code; may be a pseudo block."""

    __slots__ = (
        "id", "kind", "start", "instructions", "succ", "pred",
        "editable", "before", "after", "deleted", "cti_addr",
    )

    def __init__(self, block_id, kind, start=None):
        self.id = block_id
        self.kind = kind
        self.start = start
        self.instructions = []  # list of (addr, Instruction)
        self.succ = []
        self.pred = []
        self.editable = kind == BK_NORMAL or kind == BK_DELAY
        # Edits: index -> [snippets]; index len(instructions) means "at end".
        self.before = {}
        self.after = {}
        self.deleted = set()
        self.cti_addr = None  # address of the control transfer ending this block

    # -- queries -------------------------------------------------------------
    def __len__(self):
        return len(self.instructions)

    def addresses(self):
        return [addr for addr, _ in self.instructions]

    @property
    def last_instruction(self):
        return self.instructions[-1][1] if self.instructions else None

    @property
    def is_pseudo(self):
        return self.kind in (BK_ENTRY, BK_EXIT, BK_SURROGATE)

    def successors(self):
        return [edge.dst for edge in self.succ]

    def predecessors(self):
        return [edge.src for edge in self.pred]

    def taken_edge(self):
        for edge in self.succ:
            if edge.kind in (EK_TAKEN, EK_UNCOND):
                return edge
        return None

    def fall_edge(self):
        for edge in self.succ:
            if edge.kind == EK_FALL:
                return edge
        return None

    # -- editing ---------------------------------------------------------------
    def add_code_before(self, index, snippet):
        """Insert *snippet* before the instruction at *index*."""
        if not self.editable:
            raise CFGError("block %d is not editable" % self.id)
        self.before.setdefault(index, []).append(snippet)

    def add_code_after(self, index, snippet):
        """Insert *snippet* after the instruction at *index*.

        Not allowed after a control transfer; edit the edges instead.
        """
        if not self.editable:
            raise CFGError("block %d is not editable" % self.id)
        _, instruction = self.instructions[index]
        if instruction.is_control and not instruction.is_system:
            raise CFGError("cannot add code after a control transfer; "
                           "use the outgoing edges")
        self.after.setdefault(index, []).append(snippet)

    def delete_instruction(self, index):
        """Remove the instruction at *index* from the edited routine."""
        if not self.editable:
            raise CFGError("block %d is not editable" % self.id)
        _, instruction = self.instructions[index]
        if instruction.is_control:
            raise CFGError("cannot delete a control transfer")
        self.deleted.add(index)

    @property
    def is_edited(self):
        return bool(self.before or self.after or self.deleted)

    def __repr__(self):
        return "BB(%d %s @%s)" % (
            self.id, self.kind,
            "0x%x" % self.start if self.start is not None else "-",
        )


class IndirectJumpInfo:
    """Result of analyzing one indirect jump (paper section 3.3)."""

    def __init__(self, block, status, table_addr=None, targets=(),
                 literal=None, patch_sites=(), index_bound=None):
        self.block = block  # the jump's block
        self.status = status  # "table" | "literal" | "tailcall" | "unanalyzable"
        self.table_addr = table_addr
        self.targets = list(targets)
        self.literal = literal
        self.patch_sites = list(patch_sites)  # (addr, role) for re-pointing
        self.index_bound = index_bound


class CFG:
    """CFG of one routine, with analyses and batch editing."""

    def __init__(self, routine, summary=None):
        self.routine = routine
        self.executable = routine.executable
        self.codec = routine.executable.codec
        self.blocks = []
        self.entry = None
        self.exit = None
        self.block_at = {}  # start addr -> normal block
        self.indirect_jumps = []  # IndirectJumpInfo
        self.data_addrs = set()  # addresses proven to be data (tables)
        self.incomplete = False  # some control flow unresolved statically
        # A delayed CTI whose delay slot holds another control transfer
        # (paper §3.1): discovery stops there, and tools must refuse to
        # edit the routine — relaying the pair out-of-place changes the
        # delayed-delayed semantics.
        self.cti_in_slot = False
        self.unreached = set()  # valid, never-reached addresses in extent
        self._edge_count = 0
        self._edge_order = []  # edges in creation order (see to_summary)
        self._liveness = None  # memoized LivenessAnalysis
        self._live_summary = None  # cached liveness summary to restore from
        if summary is None:
            self._build()
        else:
            self._restore(summary)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _instruction(self, addr):
        return instruction_for(self.codec, self.executable.word_at(addr))

    def _new_block(self, kind, start=None):
        block = BasicBlock(len(self.blocks), kind, start)
        self.blocks.append(block)
        return block

    def _connect(self, src, dst, kind, editable=True, escape_target=None):
        edge = Edge(src, dst, kind, editable=editable,
                    escape_target=escape_target)
        src.succ.append(edge)
        dst.pred.append(edge)
        self._edge_count += 1
        self._edge_order.append(edge)
        return edge

    def _build(self):
        with _span("cfg.build", routine=self.routine.name) as sp:
            self._build_inner()
            sp.set(blocks=len(self.blocks), edges=self._edge_count)
        self._record_metrics()

    def _record_metrics(self, built=True):
        editable_blocks, blocks, editable_edges, edges = self.editable_stats()
        if built:
            _C_BUILDS.inc()
        else:
            _C_RESTORES.inc()
        _C_BLOCKS.inc(blocks)
        _C_EDGES.inc(edges)
        _C_EDITABLE_BLOCKS.inc(editable_blocks)
        _C_EDITABLE_EDGES.inc(editable_edges)
        _C_DELAY_HOISTS.inc(
            sum(1 for block in self.blocks if block.kind == BK_DELAY)
        )
        if self.incomplete:
            _C_INCOMPLETE.inc()
        _H_BLOCKS.observe(blocks)

    def _build_inner(self):
        from repro.core.analysis.indirect import analyze_indirect_jump

        routine = self.routine
        entries = set(routine.entries)
        known_targets = set(entries)

        for _ in range(8):  # indirect-target discovery fixpoint
            discovery = _Discovery(self, known_targets)
            discovery.run()
            self._materialize(discovery)
            new_targets = set()
            self.indirect_jumps = []
            for block in self.blocks:
                last = block.last_instruction
                if (block.kind == BK_NORMAL and last is not None
                        and last.category is Category.JUMP_INDIRECT):
                    info = analyze_indirect_jump(self, block)
                    self.indirect_jumps.append(info)
                    if info.status == "table":
                        for target in info.targets:
                            if (routine.contains(target)
                                    and target not in known_targets):
                                new_targets.add(target)
                    elif info.status == "unanalyzable":
                        self.incomplete = True
            if not new_targets:
                break
            known_targets |= new_targets
        self._finalize_indirect_edges()
        # Tables resolved by this build's own slicing land in data_addrs
        # even when no new targets forced another discovery pass (whose
        # snapshot would have picked them up as claimed data): the
        # summary's data/unreached split is defined by what the finished
        # build has proven to be data, not by claim timing — hydrating
        # claims up front (the metadata trust path) and discovering them
        # mid-build must summarize identically.
        from repro.core.analysis.indirect import table_extent

        for info in self.indirect_jumps:
            if info.status == "table":
                addr, size = table_extent(info)
                for offset in range(0, size, 4):
                    if routine.contains(addr + offset):
                        self.data_addrs.add(addr + offset)
        self._compute_unreached(known_targets)

    def _materialize(self, discovery):
        """Build blocks and edges from a completed discovery pass."""
        self.blocks = []
        self.block_at = {}
        self._edge_count = 0
        self._edge_order = []
        self.data_addrs = set(discovery.table_data)

        self.entry = self._new_block(BK_ENTRY)
        self.exit = self._new_block(BK_EXIT)

        # Normal blocks from the discovered linear runs.
        for start, addrs in discovery.runs():
            block = self._new_block(BK_NORMAL, start)
            for addr in addrs:
                block.instructions.append((addr, self._instruction(addr)))
            self.block_at[start] = block

        for entry_addr in sorted(discovery.entries):
            target = self.block_at.get(entry_addr)
            if target is not None:
                self._connect(self.entry, target, EK_ENTRY, editable=False)

        # Edges and delay/surrogate structure.
        for block in list(self.blocks):
            if block.kind != BK_NORMAL:
                continue
            self._attach_control(block, discovery)

    def _delay_block(self, cti_addr, editable):
        delay_addr = cti_addr + 4
        block = self._new_block(BK_DELAY, delay_addr)
        block.instructions.append((delay_addr, self._instruction(delay_addr)))
        block.editable = editable
        return block

    def _attach_control(self, block, discovery):
        last = block.last_instruction
        if last is None:
            return
        addr = block.instructions[-1][0]
        end_addr = addr + 4

        if not last.is_control or last.category is Category.SYSTEM:
            # Fell off into the next leader (system calls fall through).
            self._link_fall(block, end_addr)
            return

        block.cti_addr = addr
        category = last.category

        if category is Category.BRANCH:
            self._attach_branch(block, addr, last)
            return

        if category in (Category.CALL, Category.CALL_INDIRECT):
            delay = self._delay_block(addr, editable=False)
            self._connect(block, delay, EK_DELAY, editable=False)
            surrogate = self._new_block(BK_SURROGATE)
            self._connect(delay, surrogate, EK_CALL, editable=False)
            continuation = self.block_at.get(addr + 8)
            if continuation is not None:
                self._connect(surrogate, continuation, EK_CRETURN,
                              editable=False)
            else:
                self._connect(surrogate, self.exit, EK_EXIT, editable=False)
            return

        if category is Category.RETURN:
            delay = self._delay_block(addr, editable=False)
            self._connect(block, delay, EK_DELAY, editable=False)
            self._connect(delay, self.exit, EK_EXIT, editable=False)
            return

        if category is Category.JUMP:
            target = last.target(addr)
            if last.is_delayed:
                delay = self._delay_block(addr, editable=True)
                self._connect(block, delay, EK_UNCOND)
                self._link_direct(delay, target)
            else:
                self._link_direct(block, target)
            return

        if category is Category.JUMP_INDIRECT:
            delay = self._delay_block(addr, editable=False)
            self._connect(block, delay, EK_DELAY, editable=False)
            # Computed edges attached after slicing (_finalize_indirect_edges).
            return

        raise CFGError("unhandled control category %s" % category)

    def _attach_branch(self, block, addr, last):
        target = last.target(addr)
        cond = last.cond

        if cond == "a" and not last.is_delayed:
            # ba,a: annulled unconditional; no delay slot executes.
            self._link_direct(block, target, kind=EK_UNCOND)
            return
        if cond == "a":
            delay = self._delay_block(addr, editable=True)
            self._connect(block, delay, EK_UNCOND)
            self._link_direct(delay, target)
            return
        if cond == "n":
            # Branch never: pure fall-through (with delay when not annulled).
            if last.annul_untaken:
                self._link_fall(block, addr + 8)
            else:
                delay = self._delay_block(addr, editable=True)
                self._connect(block, delay, EK_FALL)
                self._link_fall(delay, addr + 8)
            return

        # Conditional branch.
        if last.annul_untaken:
            # Delay executes on the taken path only (Figure 3).
            delay = self._delay_block(addr, editable=True)
            self._connect(block, delay, EK_TAKEN)
            self._link_direct(delay, target)
            self._link_fall(block, addr + 8)
        else:
            # Delay duplicated along both edges.
            taken_delay = self._delay_block(addr, editable=True)
            fall_delay = self._delay_block(addr, editable=True)
            self._connect(block, taken_delay, EK_TAKEN)
            self._link_direct(taken_delay, target)
            self._connect(block, fall_delay, EK_FALL)
            self._link_fall(fall_delay, addr + 8)

    def _link_direct(self, src, target, kind=EK_UNCOND):
        if target is not None and self.routine.contains(target):
            dst = self.block_at.get(target)
            if dst is not None:
                self._connect(src, dst, kind)
                return
        self._connect(src, self.exit, EK_ESCAPE, editable=False,
                      escape_target=target)

    def _link_fall(self, src, addr):
        dst = self.block_at.get(addr)
        if dst is not None:
            self._connect(src, dst, EK_FALL)
        else:
            self._connect(src, self.exit, EK_EXIT, editable=False,
                          escape_target=addr)

    def _finalize_indirect_edges(self):
        from repro.core.analysis.indirect import record_indirect_outcome

        for info in self.indirect_jumps:
            record_indirect_outcome(info)
            block = info.block
            delay = None
            for edge in block.succ:
                if edge.kind == EK_DELAY:
                    delay = edge.dst
            source = delay if delay is not None else block
            if info.status == "table":
                seen = set()
                for target in info.targets:
                    if target in seen:
                        continue
                    seen.add(target)
                    dst = self.block_at.get(target)
                    if dst is not None:
                        # Editable: layout redirects the table entry to a
                        # stub holding the edge's snippets (the paper's
                        # "modifies the table to point to edited locations").
                        self._connect(source, dst, EK_COMPUTED)
                    else:
                        self._connect(source, self.exit, EK_ESCAPE,
                                      editable=False, escape_target=target)
            elif info.status in ("literal", "tailcall"):
                self._link_escape_or_local(source, info.literal)
            else:
                self._connect(source, self.exit, EK_EXIT, editable=False)

    def _link_escape_or_local(self, source, target):
        dst = self.block_at.get(target) if target is not None else None
        if dst is not None and self.routine.contains(target):
            self._connect(source, dst, EK_COMPUTED, editable=False)
        else:
            self._connect(source, self.exit, EK_ESCAPE, editable=False,
                          escape_target=target)

    def _compute_unreached(self, known_targets):
        covered = set()
        for block in self.blocks:
            for addr, _ in block.instructions:
                covered.add(addr)
        routine = self.routine
        self.unreached = set()
        addr = routine.start
        while addr < routine.end:
            if addr not in covered and addr not in self.data_addrs:
                self.unreached.add(addr)
            addr += 4

    # ------------------------------------------------------------------
    # Summaries: persistable CFG shape for repro.cache
    # ------------------------------------------------------------------
    def to_summary(self):
        """JSON-ready description of this CFG (blocks, edges, analyses).

        Edges are serialized in creation order: succ/pred list order is
        semantically significant (layout assumes ``succ[0]`` is the
        delay edge of a call, for instance), and replaying creation
        order through :meth:`_connect` reproduces it exactly.
        """
        blocks = [
            [block.kind, block.start, block.addresses(),
             1 if block.editable else 0, block.cti_addr]
            for block in self.blocks
        ]
        edges = [
            [edge.src.id, edge.dst.id, edge.kind,
             1 if edge.editable else 0, edge.escape_target]
            for edge in self._edge_order
        ]
        indirect = [
            {"block": info.block.id, "status": info.status,
             "table_addr": info.table_addr, "targets": list(info.targets),
             "literal": info.literal,
             "patch_sites": [list(site) for site in info.patch_sites],
             "index_bound": info.index_bound}
            for info in self.indirect_jumps
        ]
        return {
            "blocks": blocks,
            "edges": edges,
            "entry": self.entry.id,
            "exit": self.exit.id,
            "indirect": indirect,
            "data_addrs": sorted(self.data_addrs),
            "unreached": sorted(self.unreached),
            "incomplete": 1 if self.incomplete else 0,
            "cti_in_slot": 1 if self.cti_in_slot else 0,
        }

    def _restore(self, summary):
        """Rebuild the CFG from a summary instead of re-analyzing.

        Counters for graph *shape* (blocks, edges, hoists, indirect
        outcomes) are recorded as on a fresh build so warm-cache reports
        stay comparable, but ``cfg.builds`` is not incremented and the
        span is ``cfg.restore`` — the analysis itself did not run.
        """
        from repro.core.analysis.indirect import record_indirect_outcome

        with _span("cfg.restore", routine=self.routine.name) as sp:
            for kind, start, addrs, editable, cti_addr in summary["blocks"]:
                block = self._new_block(kind, start)
                block.editable = bool(editable)
                block.cti_addr = cti_addr
                for addr in addrs:
                    block.instructions.append((addr,
                                               self._instruction(addr)))
                if kind == BK_NORMAL:
                    self.block_at[start] = block
            self.entry = self.blocks[summary["entry"]]
            self.exit = self.blocks[summary["exit"]]
            for src, dst, kind, editable, escape_target in summary["edges"]:
                self._connect(self.blocks[src], self.blocks[dst], kind,
                              editable=bool(editable),
                              escape_target=escape_target)
            for entry in summary["indirect"]:
                info = IndirectJumpInfo(
                    self.blocks[entry["block"]], entry["status"],
                    table_addr=entry["table_addr"],
                    targets=entry["targets"],
                    literal=entry["literal"],
                    patch_sites=[tuple(site)
                                 for site in entry["patch_sites"]],
                    index_bound=entry["index_bound"],
                )
                self.indirect_jumps.append(info)
                record_indirect_outcome(info)
            self.data_addrs = set(summary["data_addrs"])
            self.unreached = set(summary["unreached"])
            self.incomplete = bool(summary["incomplete"])
            self.cti_in_slot = bool(summary.get("cti_in_slot", 0))
            sp.set(blocks=len(self.blocks), edges=self._edge_count)
        self._record_metrics(built=False)

    # ------------------------------------------------------------------
    # Queries and statistics
    # ------------------------------------------------------------------
    def normal_blocks(self):
        return [b for b in self.blocks if b.kind == BK_NORMAL]

    def all_edges(self):
        return [edge for block in self.blocks for edge in block.succ]

    def block_census(self):
        """Counts by block kind (reproduces the paper's footnote 1)."""
        census = {}
        for block in self.blocks:
            census[block.kind] = census.get(block.kind, 0) + 1
        return census

    def editable_stats(self):
        """(editable blocks, total, editable edges, total)."""
        blocks_total = len(self.blocks)
        blocks_editable = sum(1 for b in self.blocks if b.editable)
        edges = self.all_edges()
        edges_editable = sum(1 for e in edges if e.editable)
        return blocks_editable, blocks_total, edges_editable, len(edges)

    @property
    def is_edited(self):
        return any(b.is_edited for b in self.blocks) or any(
            edge.snippets for edge in self.all_edges()
        )

    def instruction_count(self):
        return sum(len(b) for b in self.blocks if b.kind == BK_NORMAL)

    # -- analyses (lazy imports keep module load light) ---------------------
    def dominators(self):
        from repro.core.analysis.dominators import dominators

        return dominators(self)

    def natural_loops(self):
        from repro.core.analysis.loops import natural_loops

        return natural_loops(self)

    def live_registers(self):
        from repro.core.analysis.liveness import LivenessAnalysis

        if self._liveness is None:
            if self._live_summary is not None:
                self._liveness = LivenessAnalysis.from_summary(
                    self, self._live_summary)
            else:
                self._liveness = LivenessAnalysis(self)
        return self._liveness

    def backward_slice(self, block, index, reg):
        from repro.core.analysis.slicing import backward_slice

        return backward_slice(self, block, index, reg)


class _Discovery:
    """Reachability pass: finds instructions, leaders, and data.

    A reachable invalid instruction marks the path as data (paper section
    3.1 stage 4); unreachable valid suffixes become hidden-routine
    candidates during symbol refinement.
    """

    def __init__(self, cfg, entries):
        self.cfg = cfg
        self.routine = cfg.routine
        self.entries = set(entries)
        self.visited = set()
        self.delay_addrs = set()
        self.leaders = set(entries)
        self.cti_addrs = set()
        self.escapes = []  # (source addr, target addr) leaving the routine
        self.call_targets = []  # direct call targets (for refinement)
        self.table_data = set(self.routine.executable.claimed_data(
            self.routine))
        self.invalid_hits = set()

    def run(self):
        work = sorted(self.entries)
        while work:
            addr = work.pop()
            self._walk(addr, work)

    def _walk(self, addr, work):
        cfg = self.cfg
        routine = self.routine
        while True:
            if addr in self.visited and addr not in self.delay_addrs:
                return
            if not routine.contains(addr) or addr in self.table_data:
                return
            instruction = cfg._instruction(addr)
            if not instruction.is_valid:
                # Reachable invalid word: data in text.
                self.invalid_hits.add(addr)
                return
            self.visited.add(addr)
            if not instruction.is_control \
                    or instruction.category is Category.SYSTEM:
                # System calls return sequentially here; they do not end
                # a basic block.
                addr += 4
                continue

            self.cti_addrs.add(addr)
            successors = []
            if instruction.is_delayed:
                delay_addr = addr + 4
                if routine.contains(delay_addr):
                    delay_inst = cfg._instruction(delay_addr)
                    if delay_inst.is_control \
                            and delay_inst.category is not Category.SYSTEM:
                        # Delayed CTI in a delay slot: conservative stop.
                        cfg.incomplete = True
                        cfg.cti_in_slot = True
                        return
                    self.visited.add(delay_addr)
                    self.delay_addrs.add(delay_addr)

            category = instruction.category
            target = instruction.target(addr)
            if category is Category.BRANCH:
                cond = instruction.cond
                if cond != "n" and target is not None:
                    successors.append(target)
                if cond != "a":
                    successors.append(addr + 8 if instruction.is_delayed
                                      or instruction.annul_untaken
                                      else addr + 8)
            elif category is Category.JUMP:
                if target is not None:
                    successors.append(target)
            elif category in (Category.CALL, Category.CALL_INDIRECT):
                if target is not None:
                    self.call_targets.append(target)
                successors.append(addr + 8)
            elif category is Category.RETURN:
                pass
            elif category is Category.JUMP_INDIRECT:
                pass  # resolved by the slicing fixpoint in CFG._build
            for successor in successors:
                if routine.contains(successor):
                    self.leaders.add(successor)
                    if successor not in self.visited:
                        work.append(successor)
                else:
                    self.escapes.append((addr, successor))
            return

    def runs(self):
        """Yield (start, [addrs]) for every normal linear block."""
        body_addrs = sorted(
            addr for addr in self.visited
            if addr not in self.delay_addrs or addr in self.leaders
        )
        runs = []
        current = None
        for addr in body_addrs:
            if current is None or addr in self.leaders or (
                current and addr != current[-1] + 4
            ):
                current = [addr]
                runs.append(current)
            else:
                current.append(addr)
            if addr in self.cti_addrs:
                current = None
        return [(run[0], run) for run in runs]
