"""Code snippets: foreign code added to an executable (paper section 3.5).

A snippet holds machine words written with *placeholder* registers, a
set of registers that must be allocated (mapped onto dead registers at
the insertion point), a set of forbidden registers, and an optional
call-back invoked after register allocation but before final placement.
"""


class CodeSnippet:
    """Foreign code to insert, with context-dependent register allocation.

    Parameters
    ----------
    words:
        Machine words forming the snippet body.
    alloc_regs:
        Placeholder register numbers appearing in *words* that EEL must
        rebind to registers that are dead at the insertion point.
    forbidden_regs:
        Registers EEL must not assign (even if dead), e.g. because the
        snippet needs their current value.
    callback:
        ``callback(words, address, mapping) -> words or None`` — invoked
        after register allocation with the final address; may modify the
        instructions but not their number (paper: used for displacement
        adjustment and backpatching).
    clobbers_cc:
        True when the snippet changes condition codes; EEL preserves
        them when live.
    """

    def __init__(self, words, alloc_regs=(), forbidden_regs=(),
                 callback=None, clobbers_cc=False, tag=None):
        self.words = list(words)
        self.alloc_regs = tuple(alloc_regs)
        self.forbidden_regs = frozenset(forbidden_regs)
        self.callback = callback
        self.clobbers_cc = clobbers_cc
        self.tag = tag

    def __len__(self):
        return len(self.words)

    def __repr__(self):
        return "CodeSnippet(%d words%s)" % (
            len(self.words), ", tag=%r" % self.tag if self.tag else ""
        )


class TaggedCodeSnippet(CodeSnippet):
    """A snippet whose instructions can be addressed by index and patched.

    The analog of the paper's Figure 2 ``tagged_code_snippet``: tools use
    ``find_inst``/``set_inst`` to customize individual instructions (for
    example, inserting a counter's address into a sethi/or pair).
    """

    def find_inst(self, index):
        return self.words[index]

    def set_inst(self, index, word):
        self.words[index] = word
