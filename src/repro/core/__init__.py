"""EEL core: the five machine-independent abstractions.

``executable`` / ``routine`` / CFG / ``instruction`` / ``snippet``
(paper section 3), plus the analyses beneath them: symbol-table
refinement, delay-slot CFG normalization, dominators, natural loops,
liveness, backward slicing, dispatch-table discovery, snippet register
scavenging, and edited-routine layout.
"""

from repro.core.executable import Executable
from repro.core.instruction import Instruction, instruction_for
from repro.core.snippet import CodeSnippet
from repro.core.cfg import CFG, BasicBlock, Edge

__all__ = [
    "Executable",
    "Instruction",
    "instruction_for",
    "CodeSnippet",
    "CFG",
    "BasicBlock",
    "Edge",
]
