"""Symbol-table refinement (paper section 3.1).

Symbol tables are incomplete or misleading: compilers hide routines,
put data tables in the text segment, and record only primary entry
points.  Refinement proceeds in the paper's four stages:

1. prune duplicate/temporary/internal labels from the symbol table to
   form the initial routine set;
2. for stripped executables, seed with the program entry point, the
   first text address, and the targets of direct calls;
3. find calls and jumps that leave their routine: their destinations
   become entry points (or new hidden routines);
4. build CFGs: reachable-but-invalid instructions mark data; dispatch
   tables claimed by indirect-jump analysis are excluded; valid
   unreachable suffixes become hidden-routine candidates.
"""

import re

from repro.binfmt.image import BIND_GLOBAL, SYM_FUNC
from repro.core.instruction import instruction_for
from repro.isa.base import Category
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span

# Compiler-temporary label pattern (".L12", "L5", ".Lcase3", ...).
# Requires the compiler-temp *shape* — a dot-L prefix, or a bare L
# followed by a digit.  A plain "^\.?L" would also prune genuine
# routines whose names merely start with L (e.g. ``List_append``),
# silently demoting them to hidden routines.
_TEMP_LABEL = re.compile(r"^(\.L|L\d)")

_C_ROUTINES = _metrics.counter("refine.routines")
_C_HIDDEN = _metrics.counter("refine.hidden")
_C_STRIPPED = _metrics.counter("refine.stripped_seeds")


def refine_symbol_table(executable):
    """Run all refinement stages; returns (routines, hidden_routines)."""
    with _span("refine.stage1_symtab"):
        named = _stage1_initial_set(executable)
    if not named:
        with _span("refine.stage2_stripped"):
            named = _stage2_stripped_seed(executable)
            _C_STRIPPED.inc(len(named))
    with _span("refine.stage3_interproc"):
        routines = _make_routines(executable, named)
        hidden = _stage3_interprocedural(executable, routines)
    with _span("refine.stage4_cfg"):
        _stage4_cfg_feedback(executable, routines, hidden)
    _C_ROUTINES.inc(len(routines))
    _C_HIDDEN.inc(len(hidden))
    return routines, hidden


# ----------------------------------------------------------------------
def _stage1_initial_set(executable):
    """Initial routine set from the (pruned) symbol table."""
    image = executable.image
    text = image.sections.get(".text")
    if text is None:
        return {}
    best = {}  # addr -> (rank, name): lowest rank wins
    for symbol in image.symbols:
        if symbol.section != ".text":
            continue
        addr = symbol.value
        if addr % 4 or not text.contains(addr):
            continue  # not on an instruction boundary
        if symbol.kind == "label" or _TEMP_LABEL.match(symbol.name):
            continue  # temporary/internal label
        if symbol.kind == "object":
            continue  # data-in-text marker, not a routine
        # Aliases at one address: prefer function-kind over other
        # kinds, global binding over local, then the lexically first
        # name — deterministic whatever order the symbol table
        # happens to be in, instead of first-iterated-wins.
        rank = (0 if symbol.kind == SYM_FUNC else 1,
                0 if symbol.binding == BIND_GLOBAL else 1,
                symbol.name)
        if addr not in best or rank < best[addr]:
            best[addr] = rank
    return {addr: rank[2] for addr, rank in best.items()}


def _stage2_stripped_seed(executable):
    """Stripped executable: entry point, first text address, call targets."""
    image = executable.image
    text = image.sections.get(".text")
    named = {}
    if text is None:
        return named
    named[text.vaddr] = "text_start"
    if text.contains(image.entry):
        named.setdefault(image.entry, "entry")
    for addr, instruction in _scan_text(executable):
        if instruction.category is Category.CALL:
            target = instruction.target(addr)
            if target is not None and text.contains(target):
                named.setdefault(target, "hidden_0x%x" % target)
    return named


def _make_routines(executable, named):
    from repro.core.routine import Routine

    text = executable.image.sections[".text"]
    starts = sorted(named)
    routines = []
    for index, start in enumerate(starts):
        end = starts[index + 1] if index + 1 < len(starts) else text.end
        routines.append(Routine(executable, named[start], start, end))
    return routines


def _scan_text(executable):
    text = executable.image.sections[".text"]
    codec = executable.codec
    addr = text.vaddr
    for word in text.words():
        yield addr, instruction_for(codec, word)
        addr += 4


# ----------------------------------------------------------------------
def _stage3_interprocedural(executable, routines):
    """Direct calls/jumps leaving a routine.

    A target inside another routine is resolved in stage 4: it becomes a
    new hidden routine when the containing routine's own code never
    reaches it, or an additional entry point (the Fortran ENTRY case)
    when it does.  Here we only materialize targets that fall outside
    every known routine.
    """
    from repro.core.routine import Routine

    hidden = []
    for _ in range(8):  # until no new routine appears
        new_targets = set()
        for addr, instruction in _scan_text(executable):
            category = instruction.category
            if category not in (Category.CALL, Category.JUMP,
                                Category.BRANCH):
                continue
            target = instruction.target(addr)
            if target is None:
                continue
            source = _containing(routines + hidden, addr)
            if source is None or source.contains(target):
                continue
            if _containing(routines + hidden, target) is None \
                    and executable.is_text_address(target):
                new_targets.add(target)
        if not new_targets:
            break
        for target in sorted(new_targets):
            if _containing(routines + hidden, target) is not None:
                continue
            hidden.append(
                Routine(executable, "hidden_0x%x" % target, target,
                        _next_boundary(routines + hidden, executable,
                                       target),
                        hidden=True)
            )
        _fix_extents(routines, hidden, executable)
    return hidden


def _routine_map(routines):
    return {routine.start: routine for routine in routines}


def _containing(routines, addr):
    for routine in routines:
        if routine.contains(addr):
            return routine
    return None


def _adjacent(a, b):
    return a.end == b.start or b.end == a.start


def _next_boundary(routines, executable, addr):
    text = executable.image.sections[".text"]
    candidates = [r.start for r in routines if r.start > addr]
    return min(candidates) if candidates else text.end


def _fix_extents(routines, hidden, executable):
    """Recompute extents so routines end at the next routine start."""
    text = executable.image.sections[".text"]
    everyone = sorted(routines + hidden, key=lambda r: r.start)
    for index, routine in enumerate(everyone):
        end = everyone[index + 1].start if index + 1 < len(everyone) \
            else text.end
        if routine.end != end:
            routine.end = end
            routine.delete_control_flow_graph()


# ----------------------------------------------------------------------
def _stage4_cfg_feedback(executable, routines, hidden):
    """Build CFGs; their analysis refines the routine set.

    Dispatch tables found by slicing are claimed as data; escaping
    direct transfers add entry points; a routine whose very first
    instruction is invalid is a data table masquerading as a routine.
    """
    from repro.core.routine import Routine

    # Interprocedural targets landing inside other routines, from the
    # text scan: call targets and direct-jump targets.
    inbound = {}  # target addr -> True (call-like)
    for addr, instruction in _scan_text(executable):
        if instruction.category in (Category.CALL, Category.JUMP):
            target = instruction.target(addr)
            if target is not None:
                inbound.setdefault(target, True)

    for _ in range(256):  # each split makes progress; generous cap
        changed = False
        everyone = sorted(routines + hidden, key=lambda r: r.start)
        for routine in everyone:
            first = instruction_for(executable.codec,
                                    executable.word_at(routine.start))
            if not first.is_valid:
                routine.is_data = True
                continue
            cfg = routine.control_flow_graph()
            # Escaping direct transfers (incl. tail-call literal jumps)
            # land in other routines: record as inbound targets.
            for block in cfg.blocks:
                for edge in block.succ:
                    if edge.kind != "escape" or edge.escape_target is None:
                        continue
                    target = edge.escape_target
                    container = _containing(everyone, target)
                    if container is not None and container is not routine \
                            and target != container.start \
                            and target not in inbound:
                        inbound[target] = True
                        changed = True
            if _split_or_enter(executable, routine, cfg, inbound, hidden):
                changed = True
                break  # re-sort and restart the scan
            # Unreachable instructions at the END of a routine comprise
            # another (hidden) routine — the paper's stage 4 rule.
            suffix = _unreached_suffix(routine, cfg)
            if suffix is not None:
                first_split = instruction_for(
                    executable.codec, executable.word_at(suffix))
                if first_split.is_valid:
                    hidden.append(Routine(executable,
                                          "hidden_0x%x" % suffix,
                                          suffix, routine.end, hidden=True))
                    routine.end = suffix
                    routine.delete_control_flow_graph()
                    changed = True
                    break
        if not changed:
            break
    # Drop pseudo-routines that turned out to be data.
    for collection in (routines, hidden):
        collection[:] = [r for r in collection
                         if not getattr(r, "is_data", False)]


def _split_or_enter(executable, routine, cfg, inbound, hidden):
    """Resolve interprocedural targets landing inside *routine*.

    Unreached target -> new hidden routine split off at the target;
    reached target -> additional entry point (Fortran ENTRY style).
    Returns True when the routine set changed.
    """
    from repro.core.routine import Routine

    covered = set()
    for block in cfg.blocks:
        for addr, _ in block.instructions:
            covered.add(addr)
    for target in sorted(inbound):
        if not routine.contains(target) or target == routine.start:
            continue
        if target in routine.entries:
            continue
        if target in covered:
            routine.add_entry(target)
            return True
        instruction = instruction_for(executable.codec,
                                      executable.word_at(target))
        if not instruction.is_valid:
            continue
        hidden.append(Routine(executable, "hidden_0x%x" % target,
                              target, routine.end, hidden=True))
        routine.end = target
        routine.delete_control_flow_graph()
        return True
    return False


# ----------------------------------------------------------------------
# Routine identity summaries (for repro.cache)
# ----------------------------------------------------------------------
def routine_identity(routine):
    """JSON-ready identity of a refined routine."""
    return {
        "name": routine.name,
        "start": routine.start,
        "end": routine.end,
        "entries": list(routine.entries),
        "hidden": 1 if routine.hidden else 0,
    }


def routine_from_identity(executable, identity):
    """Recreate a refined routine from its identity summary."""
    from repro.core.routine import Routine

    return Routine(executable, identity["name"], identity["start"],
                   identity["end"], entries=identity["entries"],
                   hidden=bool(identity["hidden"]))


def _unreached_suffix(routine, cfg):
    """Start of the maximal unreached run ending at the routine's end,
    or None.  Claimed data (dispatch tables) does not count."""
    if not cfg.unreached:
        return None
    addr = routine.end - 4
    start = None
    while addr >= routine.start and addr in cfg.unreached:
        start = addr
        addr -= 4
    if start is None or start == routine.start:
        return None
    return start
