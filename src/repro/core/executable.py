"""The executable abstraction: open, analyze, edit, write (section 3.1).

The paper's Figure 1 drives this API:

    exec = Executable(path)
    exec.read_contents()
    for routine in exec.routines(): ...
    while not exec.hidden_routines().is_empty(): ...
    x = exec.edited_addr(exec.start_address())
    exec.write_edited_executable(out_path, x)
"""

from repro.binfmt import layout as binlayout
from repro.binfmt.image import Image
from repro.binfmt.serialize import read_image, write_image
from repro.isa import get_codec, get_conventions
from repro.obs.trace import span as _span

# Fresh address space for tool data (counter arrays, state tables).
TOOL_DATA_BASE = 0x0100_0000


class ExecutableError(Exception):
    pass


class RoutineList:
    """Routine collection with the paper's worklist interface."""

    def __init__(self, routines=()):
        self._routines = list(routines)

    def is_empty(self):
        return not self._routines

    def first(self):
        if not self._routines:
            raise ExecutableError("routine list is empty; check is_empty() "
                                  "before calling first()")
        return self._routines[0]

    def remove(self, routine):
        try:
            self._routines.remove(routine)
        except ValueError:
            raise ExecutableError(
                "routine %r is not in this list" %
                getattr(routine, "name", routine)
            ) from None

    def add(self, routine):
        self._routines.append(routine)

    def __iter__(self):
        return iter(list(self._routines))

    def __len__(self):
        return len(self._routines)

    def __getitem__(self, index):
        return self._routines[index]


class Executable:
    """An open executable: code, data, routines, and an edit session."""

    def __init__(self, source):
        if isinstance(source, Image):
            self.image = source
            self.path = None
        else:
            self.path = source
            self.image = read_image(source)
        if self.image.kind != "exec":
            raise ExecutableError("not an executable image")
        self.arch = self.image.arch
        self.codec = get_codec(self.arch)
        self.conventions = get_conventions(self.arch)
        self._routines = RoutineList()
        self._hidden = RoutineList()
        self._read = False
        self.facts = None  # FactStore, set by read_contents
        # Where the routine set came from: "discovery" (full refinement)
        # or "metadata" (verified .eel.meta hydration); cache blobs
        # round-trip it.  meta_status is (state, reason) with state in
        # absent/disabled/rejected/trusted.
        self.analysis_provenance = "discovery"
        self.meta_status = ("absent", None)
        self.meta_reject_detail = None
        self._adopt = None  # start -> adoptable summary (fuzz shrinking)
        self._claimed = set()  # data addresses claimed inside text
        self._edited_routines = {}  # name -> Routine (with .edited set)
        self._added_routines = []  # (name, base_addr, words)
        self._added_symbols = {}
        self._data_sections = []  # (name, base, size, initial_bytes)
        self._data_cursor = max(
            TOOL_DATA_BASE, binlayout.align_up(self.image.address_limit())
        )
        # Leave 2MB of headroom above the original image so the edited
        # program's heap (sbrk region) can stay at its original address.
        self._new_text_base = binlayout.align_up(
            self.image.address_limit() + 0x1000
        ) + 0x20_0000
        self._added_cursor = self._new_text_base
        self._translation_base = None
        self._finalized = None

    # ------------------------------------------------------------------
    # Reading and analysis
    # ------------------------------------------------------------------
    def read_contents(self, jobs=1, adopt=None, trust_meta=None):
        """Analyze the symbol table and program to find all routines.

        With a warm analysis cache (see :mod:`repro.cache`) the refined
        routine set, per-routine analyses, and the fact table restore
        from disk instead of being recomputed.  On a cold cache, *jobs*
        > 1 fans the per-routine analysis out across worker processes.

        When the image carries a verified ``.eel.meta`` section (see
        :mod:`repro.core.trust`) the routine set hydrates straight from
        it instead of running full refinement; any inconsistency falls
        back to refinement with a typed ``meta.reject.*`` reason.
        *trust_meta* overrides the ``$REPRO_TRUST_META`` default
        (None = use the environment, default on).

        *adopt* maps routine start addresses to surviving analysis
        summaries from a closely related executable (the fuzz
        shrinker's parent plan): routines whose extent, entries, and
        text bytes match restore their CFGs from the adopted summary
        instead of rebuilding — even during refinement's stage 4.
        """
        from repro import cache
        from repro.core import trust
        from repro.core.facts import FactStore
        from repro.core.facts import rules as _fact_rules
        from repro.core.symtab_refine import refine_symbol_table

        with _span("exe.read_contents", arch=self.arch) as sp:
            restored = cache.load_analysis(self)
            if restored is not None:
                routines, hidden = restored
                self._routines = RoutineList(routines)
                self._hidden = RoutineList(hidden)
                self._read = True
                sp.set(routines=len(routines), hidden=len(hidden),
                       cached=True)
                return self
            self._adopt = adopt or None
            hydrated = trust.attempt(self, trust_meta)
            if hydrated is not None:
                routines, hidden = hydrated
                self.analysis_provenance = "metadata"
            else:
                routines, hidden = refine_symbol_table(self)
                self.analysis_provenance = "discovery"
            sp.set(routines=len(routines), hidden=len(hidden),
                   provenance=self.analysis_provenance)
            self._routines = RoutineList(routines)
            self._hidden = RoutineList(hidden)
            self._read = True
            self.facts = FactStore()
            _fact_rules.assert_routines(self, self.facts)
            cache.store_analysis(self, jobs=jobs)
        return self

    def fact_store(self):
        """The executable's FactStore, created (with the routine
        identity facts asserted) on first use."""
        if self.facts is None:
            from repro.core.facts import FactStore
            from repro.core.facts import rules as _fact_rules

            self.facts = FactStore()
            if self._read:
                _fact_rules.assert_routines(self, self.facts)
        return self.facts

    def invalidate_routine(self, routine_or_name):
        """Mark a routine's facts (and everything depending on them)
        dirty after its bytes changed; :meth:`reanalyze` recomputes
        only the dirty set."""
        routine = self.routine(routine_or_name) \
            if isinstance(routine_or_name, str) else routine_or_name
        if routine is None:
            raise ExecutableError("unknown routine %r" % (routine_or_name,))
        self.fact_store().invalidate("routine", routine.start)
        routine.analysis_summary = None
        routine.delete_control_flow_graph()
        return routine

    def reanalyze(self):
        """Re-derive exactly the dirty facts (incremental fixpoint)."""
        from repro.core.facts import rules as _fact_rules

        _fact_rules.solve(self, self.fact_store())
        return self

    def _adoption_view(self, routine):
        """An adopted analysis summary for *routine*, or None.

        Only byte-identical routines with matching identity adopt: the
        extent, entry points, hidden flag, and a hash of the text bytes
        must all agree with the donor's record.
        """
        if not self._adopt:
            return None
        record = self._adopt.get(routine.start)
        if record is None:
            return None
        summary = record.get("summary") or {}
        if "cfg" not in summary:
            return None
        if (summary.get("end") != routine.end
                or list(summary.get("entries", ())) != routine.entries
                or bool(summary.get("hidden")) != routine.hidden):
            return None
        from repro.core.facts import rules as _fact_rules

        try:
            if record.get("text_hash") != _fact_rules.text_hash(
                    self, routine.start, routine.end):
                return None
        except (KeyError, IndexError, ValueError):
            return None
        from repro.obs import metrics as _metrics

        _metrics.counter("facts.adopted").inc()
        view = {"name": routine.name, "start": routine.start,
                "end": routine.end, "entries": list(routine.entries),
                "hidden": 1 if routine.hidden else 0,
                "cfg": summary["cfg"], "liveness": summary.get("liveness")}
        return view

    def routines(self):
        if not self._read:
            self.read_contents()
        return self._routines

    def hidden_routines(self):
        if not self._read:
            self.read_contents()
        return self._hidden

    def all_routines(self):
        return list(self.routines()) + list(self.hidden_routines())

    def routine(self, name):
        for routine in self.all_routines():
            if routine.name == name:
                return routine
        return None

    def routine_at(self, addr):
        for routine in self.all_routines():
            if routine.contains(addr):
                return routine
        return None

    def start_address(self):
        return self.image.entry

    # ------------------------------------------------------------------
    # Raw access
    # ------------------------------------------------------------------
    def word_at(self, addr):
        return self.image.word_at(addr)

    def is_text_address(self, addr):
        text = self.image.sections.get(".text")
        return text is not None and text.contains(addr) and addr % 4 == 0

    def claim_data(self, addr, size):
        """Record that [addr, addr+size) in text is data (a jump table)."""
        for offset in range(0, size, 4):
            self._claimed.add(addr + offset)

    def claimed_data(self, routine):
        return {a for a in self._claimed if routine.contains(a)}

    # ------------------------------------------------------------------
    # Additions: foreign routines and data
    # ------------------------------------------------------------------
    def add_data(self, name, size, initial=None):
        """Reserve *size* bytes of fresh data space; returns its address.

        Bases are 1KB-aligned so a single ``sethi``/``lui`` can form them.
        """
        base = binlayout.align_up(self._data_cursor, 1024)
        self._data_cursor = binlayout.align_up(base + size, 1024)
        self._data_sections.append((name, base, size, initial))
        return base

    def ensure_translation_table(self):
        """Reserve the run-time address-translation table (section 3.3).

        One word per original text word, filled at finalize time with the
        edited address of each original instruction.
        """
        if self._translation_base is None:
            text = self.image.sections[".text"]
            self._translation_base = self.add_data("__eel_translation",
                                                   text.size)
        return self._translation_base

    def add_routine(self, name, asm_text):
        """Assemble *asm_text* and add it as a new routine; returns its
        address.  The code may reference the executable's global symbols
        and previously added routines."""
        from repro.asm.assembler import Assembler
        from repro.binfmt.linker import _apply

        base = self._added_cursor
        obj = Assembler(self.arch).assemble(asm_text)
        text = obj.get_section(".text")
        if [s for s in obj.sections.values() if s.size and s.name != ".text"]:
            raise ExecutableError("added routines may only contain .text")
        symbols = dict(self._added_symbols)
        for symbol in self.image.symbols:
            symbols.setdefault(symbol.name, symbol.value)
        for symbol in obj.symbols:
            symbols[symbol.name] = base + symbol.value
        text.vaddr = base
        for reloc in obj.relocations.get(".text", ()):
            target = symbols.get(reloc.symbol)
            if target is None:
                raise ExecutableError("undefined symbol %r in added routine"
                                      % reloc.symbol)
            _apply(text, base + reloc.offset, reloc.kind,
                   target + reloc.addend)
        words = text.words()
        self._added_routines.append((name, base, words))
        self._added_symbols[name] = base
        self._added_cursor = base + 4 * len(words)
        return base

    # ------------------------------------------------------------------
    # Editing session
    # ------------------------------------------------------------------
    def register_edited(self, routine):
        if self._finalized is not None:
            raise ExecutableError(
                "cannot edit after querying edited addresses"
            )
        self._edited_routines[routine.name] = routine

    def _finalize(self):
        if self._finalized is None:
            from repro.core.layout import finalize_image

            with _span("layout.finalize",
                       edited=len(self._edited_routines),
                       added=len(self._added_routines)):
                self._finalized = finalize_image(self)
        return self._finalized

    def edited_addr(self, addr):
        """Address of the edited copy of original instruction *addr*."""
        finalized = self._finalize()
        return finalized.addr_map.get(addr, addr)

    def edited_image(self):
        return self._finalize().image

    def write_edited_executable(self, path, entry=None):
        """Write the edited program; standard tools keep working on it."""
        finalized = self._finalize()
        if entry is not None:
            finalized.image.entry = entry
        with _span("exe.write_edited", path=str(path)):
            write_image(finalized.image, path)
        return finalized.image
