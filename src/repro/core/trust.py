"""Verify-and-trust analysis of ``.eel.meta`` producer metadata.

The trust boundary (DESIGN.md §5l): a ``repro.meta/1`` table is a set
of high-confidence *claims* about an executable's structure.  Before
analysis hydrates from it, every claim is spot-checked against the
actual bytes:

* **binding** — the table's SHA-256 must match the ``.text`` bytes it
  describes (reject reason ``text-hash``);
* **extents** — routines sorted, aligned, non-overlapping, inside
  ``.text``; names unique (``extent``);
* **entries** — each routine's entry list starts at its extent, stays
  inside it, strictly increases (``entry``);
* **dispatch** — table extents aligned, word-counted, placed inside a
  mapped section; in-text tables sit inside exactly one routine, clear
  of entry points, other tables, and islands (``dispatch``);
* **islands** — aligned, inside ``.text``, pairwise disjoint, clear of
  entry points (``island``);
* **probes** — every claimed entry point decodes as a valid
  instruction, and sampled dispatch slots hold aligned in-text
  addresses that decode (``probe``);
* **delay-CTI map** — a full linear decode sweep of every claimed
  routine extent (skipping claimed data) must find *exactly* the
  claimed set of control transfers sitting in delay slots (``cti``).
  This is what makes the map load-bearing: a dropped or invented entry
  is caught here, not downstream.

Any failed check rejects the table with a typed reason (counted in
``meta.rejects`` / ``meta.reject.<reason>``) and analysis falls back to
full refinement — the fast path may change speed, never results.
"""

import struct

from repro.binfmt.image import SEC_NOBITS
from repro.binfmt.meta import (
    MetaDispatch,
    MetaError,
    MetaRoutine,
    MetaTable,
    compute_text_hash,
    extract_meta,
    has_meta,
)
from repro.core.instruction import instruction_for
from repro.env import env_choice
from repro.isa.base import Category
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span

# Every typed rejection reason (the ``meta.reject.<reason>`` counters).
REJECT_REASONS = ("format", "text-hash", "extent", "entry", "dispatch",
                  "island", "probe", "cti")

_C_PRESENT = _metrics.counter("meta.present")
_C_TRUSTED = _metrics.counter("meta.trusted")
_C_REJECTS = _metrics.counter("meta.rejects")
_C_REASON = {reason: _metrics.counter("meta.reject." + reason)
             for reason in REJECT_REASONS}

# How many slots of one dispatch table the probe pass decodes.
_TABLE_PROBES = 16


def trust_enabled(explicit=None):
    """Whether the verify-and-trust path may engage.

    *explicit* (a read_contents/CLI override) wins; otherwise
    ``$REPRO_TRUST_META`` decides, defaulting to on — the verifier
    makes trusting safe, so first-party binaries get the fast path
    without configuration.
    """
    if explicit is not None:
        return bool(explicit)
    return env_choice("REPRO_TRUST_META", "on", ("on", "off")) == "on"


# ----------------------------------------------------------------------
# Verification
# ----------------------------------------------------------------------

class _Claims:
    """The metadata's claims, indexed for the verifier's sweeps."""

    def __init__(self, executable, meta):
        self.text = executable.image.sections.get(".text")
        self.meta = meta
        self.extents = [(r.start, r.end) for r in meta.routines]
        self.entries = sorted(e for r in meta.routines for e in r.entries)
        # Data words a decode sweep must skip: islands plus in-text
        # dispatch extents (exactly what discovery treats as data).
        self.data_words = set()
        for start, end in meta.islands:
            self.data_words.update(range(start, end, 4))
        for table in meta.tables:
            if table.in_text:
                self.data_words.update(range(table.addr, table.end, 4))

    def in_text(self, addr):
        return self.text.contains(addr)


def verify_meta(executable, meta):
    """Spot-check *meta* against the executable's bytes.

    Returns None when every check passes, else ``(reason, detail)``
    with *reason* one of :data:`REJECT_REASONS`.
    """
    text = executable.image.sections.get(".text")
    if text is None:
        return "extent", "image has no .text section"
    if meta.text_vaddr != text.vaddr or meta.text_size != text.size:
        return ("text-hash",
                "text binding 0x%x+%d does not match section 0x%x+%d"
                % (meta.text_vaddr, meta.text_size, text.vaddr, text.size))
    if meta.text_sha256 != compute_text_hash(executable.image):
        return "text-hash", "stale text hash: .text bytes changed"
    claims = _Claims(executable, meta)
    for check in (_check_extents, _check_entries, _check_dispatch,
                  _check_islands, _check_probes, _check_delay_ctis):
        rejection = check(executable, claims)
        if rejection is not None:
            return rejection
    return None


def _check_extents(executable, claims):
    meta = claims.meta
    if not meta.routines:
        return "extent", "metadata claims no routines"
    names = set()
    previous = None
    for routine in meta.routines:
        if not routine.name:
            return "extent", "routine at 0x%x has no name" % routine.start
        if routine.name in names:
            return "extent", "duplicate routine name %r" % routine.name
        names.add(routine.name)
        if routine.start % 4 or routine.end % 4:
            return ("extent", "%s extent 0x%x-0x%x is misaligned"
                    % (routine.name, routine.start, routine.end))
        if routine.start >= routine.end:
            return ("extent", "%s extent 0x%x-0x%x is empty or inverted"
                    % (routine.name, routine.start, routine.end))
        if not claims.in_text(routine.start) \
                or not claims.in_text(routine.end - 4):
            return ("extent", "%s extent 0x%x-0x%x leaves .text"
                    % (routine.name, routine.start, routine.end))
        if previous is not None and routine.start < previous.end:
            return ("extent", "%s at 0x%x overlaps %s ending 0x%x"
                    % (routine.name, routine.start,
                       previous.name, previous.end))
        previous = routine
    return None


def _check_entries(executable, claims):
    for routine in claims.meta.routines:
        entries = list(routine.entries)
        if not entries or entries[0] != routine.start:
            return ("entry", "%s entries must begin at extent start 0x%x"
                    % (routine.name, routine.start))
        if entries != sorted(set(entries)):
            return ("entry", "%s entries are unsorted or duplicated"
                    % routine.name)
        for entry in entries:
            if entry % 4 or not routine.start <= entry < routine.end:
                return ("entry", "%s entry 0x%x outside extent 0x%x-0x%x"
                        % (routine.name, entry,
                           routine.start, routine.end))
    return None


def _check_dispatch(executable, claims):
    image = executable.image
    entry_set = set(claims.entries)
    seen = []
    for table in claims.meta.tables:
        if table.addr % 4 or table.count < 1:
            return ("dispatch", "table at 0x%x misaligned or empty"
                    % table.addr)
        section = image.section_at(table.addr)
        if section is None or section.flags & SEC_NOBITS \
                or image.section_at(table.end - 4) is not section:
            return ("dispatch", "table 0x%x+%d words is not mapped to "
                    "file bytes" % (table.addr, table.count))
        in_text = claims.in_text(table.addr)
        if in_text != table.in_text:
            return ("dispatch", "table 0x%x in_text flag is wrong"
                    % table.addr)
        for start, end in seen:
            if table.addr < end and start < table.end:
                return ("dispatch", "table 0x%x overlaps table 0x%x"
                        % (table.addr, start))
        seen.append((table.addr, table.end))
        if not in_text:
            continue
        containers = [r for r in claims.meta.routines
                      if r.start <= table.addr and table.end <= r.end]
        if len(containers) != 1:
            return ("dispatch", "in-text table 0x%x not inside exactly "
                    "one routine extent" % table.addr)
        if any(table.addr <= e < table.end for e in entry_set):
            return ("dispatch", "table 0x%x covers a routine entry"
                    % table.addr)
        for start, end in claims.meta.islands:
            if table.addr < end and start < table.end:
                return ("dispatch", "table 0x%x overlaps data island "
                        "0x%x-0x%x" % (table.addr, start, end))
    return None


def _check_islands(executable, claims):
    entry_set = set(claims.entries)
    previous_end = None
    for start, end in sorted(claims.meta.islands):
        if start % 4 or end % 4 or start >= end:
            return ("island", "island 0x%x-0x%x malformed" % (start, end))
        if not claims.in_text(start) or not claims.in_text(end - 4):
            return ("island", "island 0x%x-0x%x leaves .text"
                    % (start, end))
        if previous_end is not None and start < previous_end:
            return ("island", "island 0x%x-0x%x overlaps another island"
                    % (start, end))
        previous_end = end
        if any(start <= e < end for e in entry_set):
            return ("island", "island 0x%x-0x%x covers a routine entry"
                    % (start, end))
    return None


def _probe_addrs(table):
    """Up to ``_TABLE_PROBES`` slot addresses, always including the
    first and last slot (the extent's edges are where a wrong count
    shows first)."""
    if table.count <= _TABLE_PROBES:
        return [table.addr + 4 * i for i in range(table.count)]
    step = max(1, table.count // (_TABLE_PROBES - 1))
    slots = {0, table.count - 1}
    slots.update(range(0, table.count, step))
    return [table.addr + 4 * i for i in sorted(slots)][:_TABLE_PROBES]


def _check_probes(executable, claims):
    codec = executable.codec
    for routine in claims.meta.routines:
        for entry in routine.entries:
            if entry in claims.data_words:
                return ("probe", "%s entry 0x%x lies in claimed data"
                        % (routine.name, entry))
            inst = instruction_for(codec, executable.image.word_at(entry))
            if not inst.is_valid:
                return ("probe", "%s entry 0x%x does not decode"
                        % (routine.name, entry))
    for table in claims.meta.tables:
        for slot in _probe_addrs(table):
            target = executable.image.word_at(slot)
            if target % 4 or not claims.in_text(target):
                return ("probe", "table 0x%x slot 0x%x holds 0x%x, not "
                        "an aligned text address" % (table.addr, slot,
                                                     target))
            if not instruction_for(codec,
                                   executable.image.word_at(target)).is_valid:
                return ("probe", "table 0x%x target 0x%x does not decode"
                        % (table.addr, target))
    return None


def scan_delay_ctis(executable, extents, data_words=()):
    """Addresses of CTIs occupying delay slots, by exact linear sweep.

    Decodes every word of every ``(start, end)`` extent (skipping
    *data_words*); whenever a valid delayed control transfer's slot —
    still inside the same extent, not data — holds another non-system
    control transfer, the *slot* address is recorded.  This mirrors the
    CFG walker's ``cti_in_slot`` stop condition exactly, which is what
    lets the verifier demand the metadata map be both sound and
    complete rather than merely plausible.

    The sweep is the dominant cost of the whole trust path, so it
    unpacks each extent's words in one struct call and memoizes the
    per-encoding verdicts instead of taking the image word_at /
    flyweight-property path for every address.
    """
    codec = executable.codec
    text = executable.image.sections.get(".text")
    skip = set(data_words)
    found = set()
    delayed = {}  # encoding -> is a valid delayed control transfer
    in_slot = {}  # encoding -> is a non-system control transfer
    for start, end in extents:
        words = struct.unpack_from(">%dI" % ((end - start) // 4),
                                   text.data, start - text.vaddr)
        for index, word in enumerate(words):
            verdict = delayed.get(word)
            if verdict is None:
                inst = instruction_for(codec, word)
                verdict = bool(inst.is_valid and inst.is_control
                               and inst.is_delayed)
                delayed[word] = verdict
            if not verdict:
                continue
            addr = start + 4 * index
            if addr in skip:
                continue
            slot = addr + 4
            if slot >= end or slot in skip:
                continue
            slot_word = words[index + 1]
            verdict = in_slot.get(slot_word)
            if verdict is None:
                inst = instruction_for(codec, slot_word)
                verdict = bool(inst.is_valid and inst.is_control
                               and inst.category is not Category.SYSTEM)
                in_slot[slot_word] = verdict
            if verdict:
                found.add(slot)
    return found


def _check_delay_ctis(executable, claims):
    claimed = set(claims.meta.delay_ctis)
    actual = scan_delay_ctis(executable, claims.extents, claims.data_words)
    if claimed == actual:
        return None
    missing = sorted(actual - claimed)
    invented = sorted(claimed - actual)
    parts = []
    if missing:
        parts.append("missing %s" % ["0x%x" % a for a in missing])
    if invented:
        parts.append("invented %s" % ["0x%x" % a for a in invented])
    return "cti", "delay-CTI map is wrong: " + "; ".join(parts)


# ----------------------------------------------------------------------
# Hydration (the fast path) and the read_contents hook
# ----------------------------------------------------------------------

def hydrate_from_meta(executable, meta):
    """Build the refined routine sets straight from verified *meta*.

    Returns ``(routines, hidden)`` Routine lists and pre-claims in-text
    dispatch extents, reproducing exactly the end state stage 4 of full
    refinement leaves behind — islands are deliberately *not* claimed,
    because discovery never claims them either, and the differential
    gate holds the two paths to identical fact stores.
    """
    from repro.core.symtab_refine import routine_from_identity

    routines = []
    hidden = []
    for record in meta.routines:
        routine = routine_from_identity(executable, record.identity())
        (hidden if routine.hidden else routines).append(routine)
    for table in meta.tables:
        if table.in_text:
            executable.claim_data(table.addr, table.size)
    return routines, hidden


def attempt(executable, explicit=None):
    """The read_contents hook: verify the image's metadata and, when it
    holds, return the hydrated ``(routines, hidden)``; else None.

    Every outcome lands on ``executable.meta_status`` as a
    ``(state, reason)`` pair — ``absent``, ``disabled``,
    ``rejected:<reason>`` (with detail), or ``trusted`` — and on the
    ``meta.*`` counters.
    """
    image = executable.image
    if not has_meta(image):
        executable.meta_status = ("absent", None)
        return None
    _C_PRESENT.inc()
    if not trust_enabled(explicit):
        executable.meta_status = ("disabled", None)
        return None
    with _span("meta.verify") as sp:
        try:
            meta = extract_meta(image)
            rejection = verify_meta(executable, meta)
        except MetaError as error:
            rejection = ("format", str(error))
            meta = None
        if rejection is not None:
            reason, detail = rejection
            _C_REJECTS.inc()
            _C_REASON[reason].inc()
            executable.meta_status = ("rejected", reason)
            executable.meta_reject_detail = detail
            sp.set(rejected=reason)
            return None
        result = hydrate_from_meta(executable, meta)
        _C_TRUSTED.inc()
        executable.meta_status = ("trusted", None)
        sp.set(routines=len(meta.routines))
    return result


# ----------------------------------------------------------------------
# Producer side: derive a table from a completed analysis
# ----------------------------------------------------------------------

def meta_from_executable(executable):
    """A ``repro.meta/1`` table describing *executable*'s analysis.

    The producer path minic uses: run the real pipeline once at build
    time, then emit what it found.  Dispatch extents come from the
    ``dispatch`` facts; the delay-CTI map comes from the same exact
    sweep the verifier runs, so a table derived here is accepted by
    construction as long as the bytes do not change.
    """
    from repro.core.facts import rules as fact_rules

    image = executable.image
    store = executable.fact_store()
    records = []
    tables = {}
    islands = set()
    for routine in sorted(executable.all_routines(), key=lambda r: r.start):
        records.append(MetaRoutine(routine.name, routine.start, routine.end,
                                   tuple(routine.entries),
                                   hidden=routine.hidden))
        for addr, size in fact_rules.ensure(executable, store, "dispatch",
                                            routine):
            tables[addr] = MetaDispatch(
                addr, size // 4,
                in_text=executable.is_text_address(addr))
        table_words = {addr + offset for addr, size in tables.items()
                       for offset in range(0, 4 * tables[addr].count, 4)}
        for addr in fact_rules.ensure(executable, store, "islands", routine):
            if addr not in table_words:
                islands.add(addr)
    table_list = tuple(tables[addr] for addr in sorted(tables))
    data_words = set(islands)
    for table in table_list:
        if table.in_text:
            data_words.update(range(table.addr, table.end, 4))
    extents = [(r.start, r.end) for r in records]
    delay_ctis = tuple(sorted(scan_delay_ctis(executable, extents,
                                              data_words)))
    text = image.get_section(".text")
    return MetaTable(text.vaddr, text.size, compute_text_hash(image),
                     routines=tuple(records), tables=table_list,
                     delay_ctis=delay_ctis,
                     islands=tuple(_ranges(sorted(islands))))


def _ranges(addrs):
    """Collapse sorted word addresses into maximal (start, end) ranges."""
    out = []
    for addr in addrs:
        if out and out[-1][1] == addr:
            out[-1][1] = addr + 4
        else:
            out.append([addr, addr + 4])
    return [tuple(pair) for pair in out]
