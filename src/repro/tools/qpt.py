"""qpt2: the EEL-based profiler (paper sections 1, 3.3, and 5).

Two profiling modes:

* **block** — a counter at the head of every normal basic block;
* **edge** — Ball-Larus optimal placement: counters only on edges *off*
  a maximum spanning tree of the CFG; the remaining edge counts are
  reconstructed by flow conservation afterwards.  Uneditable edges are
  forced onto the spanning tree (they cannot be instrumented), which is
  exactly why EEL builds CFGs for profiling (paper section 3.3).

Reconstruction yields per-edge and per-block execution counts that the
test suite compares against simulator ground truth.
"""

from repro.core import Executable
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span
from repro.tools.common import CounterArray, counter_snippet, routine_filter

_UNEDITABLE_WEIGHT = 1 << 30

_C_COUNTERS = _metrics.counter("qpt.counters_placed")
_C_SKIPPED = _metrics.counter("qpt.uninstrumentable_edges")


class RoutineProfile:
    """Instrumentation record for one routine (edge mode)."""

    def __init__(self, routine):
        self.routine = routine
        self.edges = []  # all CFG edges (stable order)
        self.measured = {}  # edge position -> counter index
        self.tree = set()  # edge positions on the spanning tree
        self.blocks = []  # block ids and start addrs
        self.virtual_edge = None  # (exit id, entry id) circulation edge


class QptProfiler:
    """Instrument a program for profiling; reconstruct counts after a run."""

    def __init__(self, image_or_path, mode="edge", jobs=1,
                 only_routines=None):
        if mode not in ("edge", "block"):
            raise ValueError("mode must be 'edge' or 'block'")
        self.mode = mode
        self.exec = Executable(image_or_path)
        self.exec.read_contents(jobs=jobs)
        self.only = routine_filter(self.exec, only_routines)
        self.counters = CounterArray(self.exec, "__qpt_counts", 16384)
        self.profiles = {}  # routine name -> RoutineProfile
        self.block_counters = {}  # (routine, block start) -> counter index

    def _selected(self, routine):
        return self.only is None or routine.name in self.only

    # ------------------------------------------------------------------
    def run(self):
        with _span("qpt.instrument", mode=self.mode) as sp:
            for routine in self.exec.routines():
                if self._selected(routine):
                    self._instrument(routine)
            hidden = self.exec.hidden_routines()
            while not hidden.is_empty():
                routine = hidden.first()
                hidden.remove(routine)
                if self._selected(routine):
                    self._instrument(routine)
                self.exec.routines().add(routine)
            sp.set(counters=self.counters.used)
        _C_COUNTERS.inc(self.counters.used)
        return self

    def _instrument(self, routine):
        if routine.control_flow_graph().cti_in_slot:
            # Paper §3.1: a branch occupying a delay slot cannot be
            # edited — leave the routine in place, unprofiled.
            routine.delete_control_flow_graph()
            return
        if self.mode == "block":
            self._instrument_blocks(routine)
        else:
            self._instrument_edges(routine)
        routine.produce_edited_routine()
        routine.delete_control_flow_graph()

    def _instrument_blocks(self, routine):
        cfg = routine.control_flow_graph()
        for block in cfg.normal_blocks():
            index = self.counters.allocate((routine.name, block.start))
            self.block_counters[(routine.name, block.start)] = index
            block.add_code_before(
                0, counter_snippet(self.exec, self.counters.address(index),
                                   tag=("qpt.block", routine.name,
                                        block.start))
            )

    # -- edge mode ---------------------------------------------------------
    def _instrument_edges(self, routine):
        cfg = routine.control_flow_graph()
        profile = RoutineProfile(routine)
        profile.blocks = [(b.id, b.start, b.kind) for b in cfg.blocks]
        edges = cfg.all_edges()
        profile.edges = edges
        profile.virtual_edge = (cfg.exit.id, cfg.entry.id)

        tree = self._spanning_tree(cfg, edges)
        profile.tree = tree
        for position, edge in enumerate(edges):
            if position in tree:
                continue
            if not edge.editable:
                # Cannot instrument and not on the tree: counts for this
                # routine cannot be fully reconstructed; fall back to
                # counting what we can.
                _C_SKIPPED.inc()
                continue
            index = self.counters.allocate(
                (routine.name, edge.src.id, edge.dst.id)
            )
            profile.measured[position] = index
            edge.add_code_along(
                counter_snippet(self.exec, self.counters.address(index),
                                tag=("qpt.edge", routine.name,
                                     edge.src.id, edge.dst.id))
            )
        self.profiles[routine.name] = profile

    def _spanning_tree(self, cfg, edges):
        """Maximum spanning tree (undirected) over block ids.

        Uneditable edges get maximal weight so they always join the tree;
        the virtual exit->entry circulation edge is implicitly on the
        tree (it is never a real edge).
        """
        parent = {}

        def find(x):
            while parent.get(x, x) != x:
                parent[x] = parent.get(parent[x], parent[x])
                x = parent[x]
            return x

        def union(a, b):
            ra, rb = find(a), find(b)
            if ra == rb:
                return False
            parent[ra] = rb
            return True

        # The virtual edge joins exit and entry first.
        union(cfg.exit.id, cfg.entry.id)
        weighted = sorted(
            range(len(edges)),
            key=lambda pos: -( _UNEDITABLE_WEIGHT if not edges[pos].editable
                               else self._edge_weight(edges[pos])),
        )
        tree = set()
        for position in weighted:
            edge = edges[position]
            if union(edge.src.id, edge.dst.id):
                tree.add(position)
        return tree

    @staticmethod
    def _edge_weight(edge):
        # Static heuristic: prefer keeping fall-through edges uncounted.
        return {"fall": 4, "creturn": 3, "uncond": 2}.get(edge.kind, 1)

    # ------------------------------------------------------------------
    def edited_image(self):
        image = self.exec.edited_image()
        image.entry = self.exec.edited_addr(self.exec.start_address())
        return image

    def write(self, path):
        entry = self.exec.edited_addr(self.exec.start_address())
        return self.exec.write_edited_executable(path, entry)

    # ------------------------------------------------------------------
    # Count reconstruction (edge mode)
    # ------------------------------------------------------------------
    def block_counts(self, simulator):
        """{(routine name, block start): executions} after a run."""
        values = self.counters.read(simulator)
        if self.mode == "block":
            return {
                key: values[index]
                for key, index in self.block_counters.items()
            }
        counts = {}
        for name, profile in self.profiles.items():
            edge_flow = self._reconstruct(profile, values)
            if edge_flow is None:
                continue
            for block_id, start, kind in profile.blocks:
                if kind != "normal" or start is None:
                    continue
                total = sum(
                    flow for (src, dst), flow in edge_flow.items()
                    if dst == block_id
                )
                counts[(name, start)] = total
        return counts

    def edge_counts(self, simulator):
        """{(routine, src block id, dst block id): count} after a run."""
        values = self.counters.read(simulator)
        out = {}
        for name, profile in self.profiles.items():
            edge_flow = self._reconstruct(profile, values)
            if edge_flow is None:
                continue
            for (src, dst), flow in edge_flow.items():
                out[(name, src, dst)] = flow
        return out

    def _reconstruct(self, profile, values):
        """Solve tree-edge flows by conservation at each vertex."""
        flows = {}  # (src id, dst id) keyed by edge position
        unknown = []
        incident = {}
        for position, edge in enumerate(profile.edges):
            key = (edge.src.id, edge.dst.id, position)
            if position in profile.measured:
                flows[key] = values[profile.measured[position]]
            elif position in profile.tree:
                flows[key] = None
                unknown.append(key)
            else:
                # Uninstrumentable off-tree edge: reconstruction impossible.
                return None
        # Virtual circulation edge exit->entry, always on the tree.
        virtual = (profile.virtual_edge[0], profile.virtual_edge[1], -1)
        flows[virtual] = None
        unknown.append(virtual)

        for key in flows:
            src, dst, _ = key
            incident.setdefault(src, []).append(key)
            incident.setdefault(dst, []).append(key)

        # Leaf elimination over the conservation equations.
        pending = set(unknown)
        progress = True
        while pending and progress:
            progress = False
            for vertex, keys in incident.items():
                unknown_here = [k for k in keys if flows[k] is None]
                if len(unknown_here) != 1:
                    continue
                missing = unknown_here[0]
                inflow = sum(flows[k] for k in keys
                             if k[1] == vertex and flows[k] is not None)
                outflow = sum(flows[k] for k in keys
                              if k[0] == vertex and flows[k] is not None)
                if missing[1] == vertex:  # missing edge flows in
                    flows[missing] = outflow - inflow
                else:
                    flows[missing] = inflow - outflow
                pending.discard(missing)
                progress = True
        if pending:
            return None
        result = {}
        for (src, dst, position), flow in flows.items():
            if position == -1:
                continue
            result[(src, dst)] = result.get((src, dst), 0) + flow
        return result


def profile(image, mode="edge", stdin_text=""):
    """Convenience: instrument, run, and return (tool, simulator)."""
    from repro.sim import run_image

    tool = QptProfiler(image, mode=mode).run()
    simulator = run_image(tool.edited_image(), stdin_text=stdin_text)
    return tool, simulator
