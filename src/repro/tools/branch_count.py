"""Branch-counting tool: the paper's Figures 1-2 example.

Adds a counter along every outgoing edge of every block with more than
one successor, processes hidden routines from the worklist, and writes
the edited executable — a direct transcription of Figure 1 against this
library's API.
"""

from repro.core import Executable
from repro.tools.common import CounterArray, counter_snippet


class BranchCounter:
    """Instrument an executable to count branch-edge executions."""

    def __init__(self, image_or_path):
        self.exec = Executable(image_or_path)
        self.exec.read_contents()
        self.counters = CounterArray(self.exec, "__branch_counts")

    def instrument_routine(self, routine):
        cfg = routine.control_flow_graph()
        if cfg.cti_in_slot:
            # Paper §3.1: un-editable delayed-delayed flow.
            routine.delete_control_flow_graph()
            return
        for block in cfg.blocks:
            if len(block.succ) <= 1:
                continue
            for edge in block.succ:
                if not edge.editable:
                    continue
                index = self.counters.allocate(
                    (routine.name, block.start, edge.kind)
                )
                edge.add_code_along(
                    counter_snippet(self.exec, self.counters.address(index))
                )
        routine.produce_edited_routine()
        routine.delete_control_flow_graph()

    def run(self):
        """Instrument every routine (including discovered hidden ones)."""
        for routine in self.exec.routines():
            self.instrument_routine(routine)
        hidden = self.exec.hidden_routines()
        while not hidden.is_empty():
            routine = hidden.first()
            hidden.remove(routine)
            self.instrument_routine(routine)
            self.exec.routines().add(routine)
        return self

    def edited_image(self):
        image = self.exec.edited_image()
        image.entry = self.exec.edited_addr(self.exec.start_address())
        return image

    def write(self, path):
        entry = self.exec.edited_addr(self.exec.start_address())
        return self.exec.write_edited_executable(path, entry)

    def counts(self, simulator):
        """(descriptor, count) pairs after running the edited program."""
        return list(zip(self.counters.meaning,
                        self.counters.read(simulator)))


def count_branches(image, run=True, stdin_text=""):
    """Convenience: instrument, run, and return (output, counts)."""
    from repro.sim import run_image

    tool = BranchCounter(image).run()
    edited = tool.edited_image()
    simulator = run_image(edited, stdin_text=stdin_text)
    return simulator, tool.counts(simulator)
