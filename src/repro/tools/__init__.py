"""Tools built on EEL: the applications from the paper's sections 1 and 5.

* :mod:`repro.tools.branch_count` — the Figures 1-2 branch-counting tool;
* :mod:`repro.tools.qpt` — qpt2, the EEL-based profiler (Ball-Larus edge
  counting with spanning-tree placement);
* :mod:`repro.tools.qpt_classic` — the ad-hoc baseline profiler ("old
  qpt") used in the Table 1 comparison;
* :mod:`repro.tools.active_memory` — cache simulation by inserted
  access tests (Lebeck & Wood's Active Memory);
* :mod:`repro.tools.blizzard` — fine-grain access control for
  distributed shared memory (Blizzard-S);
* :mod:`repro.tools.sfi` — software fault isolation (sandboxing);
* :mod:`repro.tools.elsie` — a direct-execution simulator that replaces
  loads/stores with simulator calls.
"""
