"""Tools built on EEL: the applications from the paper's sections 1 and 5.

* :mod:`repro.tools.branch_count` — the Figures 1-2 branch-counting tool;
* :mod:`repro.tools.qpt` — qpt2, the EEL-based profiler (Ball-Larus edge
  counting with spanning-tree placement);
* :mod:`repro.tools.qpt_classic` — the ad-hoc baseline profiler ("old
  qpt") used in the Table 1 comparison;
* :mod:`repro.tools.active_memory` — cache simulation by inserted
  access tests (Lebeck & Wood's Active Memory);
* :mod:`repro.tools.blizzard` — fine-grain access control for
  distributed shared memory (Blizzard-S);
* :mod:`repro.tools.sfi` — software fault isolation (sandboxing);
* :mod:`repro.tools.elsie` — a direct-execution simulator that replaces
  loads/stores with simulator calls.

Tools are also dispatchable by name through :func:`instrument_image`,
the registry surface shared by ``repro verify`` and the edit-serving
daemon (``repro serve``): both accept a tool name over their interface
and must resolve it to an edit session the same way.
"""

import collections

EditSession = collections.namedtuple(
    "EditSession", "executable edited_image configure_edited tool name")

# name -> (sparc_only, factory).  Factories are resolved lazily so that
# importing repro.tools stays cheap for callers that never edit.
_SPARC_ONLY = ("sfi", "elsie", "active_memory")


def tool_names():
    """Names accepted by :func:`instrument_image` (stable order)."""
    return ("qpt", "sfi", "elsie", "active_memory")


def instrument_image(image, tool, mode="edge", jobs=1, cache_size=8192,
                     only_routines=None):
    """Instrument *image* with the tool named *tool*.

    The single dispatch point for "edit this image with that tool":
    returns an :class:`EditSession` whose ``executable`` is the
    finished editing session, ``edited_image`` the rewritten image,
    ``configure_edited`` an optional hook preparing a simulator with
    the tool's host-side runtime state, and ``tool`` the tool instance
    itself (for tool-specific post-run queries such as qpt's count
    reconstruction).

    *only_routines* restricts the edit to the named routines (the rest
    stay in place, uninstrumented); a name missing from the image
    raises ``ValueError``.  With a warm analysis cache, a restricted
    edit touches only those routines' analyses.
    """
    if tool not in tool_names():
        raise ValueError("unknown tool %r (have: %s)"
                         % (tool, ", ".join(tool_names())))
    if tool in _SPARC_ONLY and image.arch != "sparc":
        raise ValueError("tool %r supports only sparc images" % tool)
    if tool == "qpt":
        from repro.tools.qpt import QptProfiler

        profiler = QptProfiler(image, mode=mode, jobs=jobs,
                               only_routines=only_routines).run()
        return EditSession(profiler.exec, profiler.edited_image(), None,
                           profiler, tool)
    if tool == "sfi":
        from repro.tools.sfi import Sandboxer

        sandboxer = Sandboxer(image, only_routines=only_routines)
        sandboxer.instrument()
        return EditSession(sandboxer.exec, sandboxer.edited_image(), None,
                           sandboxer, tool)
    if tool == "elsie":
        from repro.tools.elsie import ElsieSimulatorBuilder

        builder = ElsieSimulatorBuilder(image, only_routines=only_routines)
        builder.instrument()
        return EditSession(builder.exec, builder.edited_image(),
                           builder.configure_simulator, builder, tool)
    from repro.tools.active_memory import ActiveMemory

    memory = ActiveMemory(image, cache_size=cache_size, jobs=jobs,
                          only_routines=only_routines)
    memory.instrument()
    return EditSession(memory.exec, memory.edited_image(), None,
                       memory, tool)
