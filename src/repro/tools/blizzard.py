"""Blizzard-S: fine-grain access control for shared memory (sections 1, 5).

Blizzard implements cache-block-granularity distributed shared memory by
inserting access-control tests before shared loads and stores.  Each
32-byte block has a state byte: ReadWrite (0), ReadOnly (1), or
Invalid (2).  A load faults when the block is Invalid; a store faults
unless the block is ReadWrite.  Faults trap to a protocol handler that
"fetches" the block (here: a host hook standing in for the coherence
protocol).

Two fidelity points from the paper:

* the EEL version exploits **live-register analysis** to emit a faster
  test when the condition codes are dead (section 5); pass
  ``always_save_cc=True`` to measure the cost of not having liveness —
  the test then saves/restores %psr around every site;
* stack-pointer-relative accesses are filtered statically (private
  data), which the ad-hoc version could not do safely.
"""

from repro.core import Executable
from repro.core.snippet import CodeSnippet
from repro.sim import Simulator
from repro.sim.syscalls import SYS_FAULT

BLOCK_SHIFT = 5
ADDR_BITS = 24
TABLE_SIZE = 1 << (ADDR_BITS - BLOCK_SHIFT)

STATE_READWRITE = 0
STATE_READONLY = 1
STATE_INVALID = 2

SPILL_O0 = -120
SPILL_G1 = -124


class BlizzardAccessControl:
    """Insert fine-grain access-control tests before shared accesses."""

    def __init__(self, image, always_save_cc=False, initial_state=None):
        if image.arch != "sparc":
            raise ValueError("Blizzard tool currently targets SPARC")
        self.exec = Executable(image)
        self.exec.read_contents()
        self.always_save_cc = always_save_cc
        table = initial_state if initial_state is not None \
            else bytes(TABLE_SIZE)
        self.state_base = self.exec.add_data("__bz_state", TABLE_SIZE,
                                             initial=table)
        self.sites = 0
        self.cc_saved_sites = 0  # sites carrying an explicit cc save

    # ------------------------------------------------------------------
    def _test_snippet(self, instruction):
        codec = self.exec.codec
        sp = self.exec.conventions.sp_reg
        avoid = instruction.reads() | {8, 1, sp}
        free = [r for r in range(16, 24) if r not in avoid]
        t_ea, t_idx, t_state = free[0], free[1], free[2]

        fields = {"rd": t_ea, "rs1": instruction.field("rs1")}
        if instruction.has_field("simm13"):
            fields["simm13"] = instruction.field("simm13")
        else:
            fields["rs2"] = instruction.field("rs2")

        # Loads tolerate ReadOnly; stores require ReadWrite.
        limit = STATE_READONLY if instruction.is_load else STATE_READWRITE

        words = [
            codec.encode("add", **fields),
            codec.encode("sll", rd=t_idx, rs1=t_ea, simm13=32 - ADDR_BITS),
            codec.encode("srl", rd=t_idx, rs1=t_idx,
                         simm13=(32 - ADDR_BITS) + BLOCK_SHIFT),
            codec.encode("sethi", rd=t_state, imm22=self.state_base >> 10),
            codec.encode("ldub", rd=t_state, rs1=t_state, rs2=t_idx),
            codec.encode("subcc", rd=0, rs1=t_state, simm13=limit),
            codec.encode("bleu", disp22=9),  # permitted: skip fault path
            codec.nop_word,
            codec.encode("st", rd=8, rs1=sp, simm13=SPILL_O0),
            codec.encode("st", rd=1, rs1=sp, simm13=SPILL_G1),
            codec.encode("or", rd=8, rs1=0, rs2=t_ea),
            codec.encode("or", rd=1, rs1=0, simm13=SYS_FAULT),
            codec.encode("ta", trap_num=0),
            codec.encode("ld", rd=8, rs1=sp, simm13=SPILL_O0),
            codec.encode("ld", rd=1, rs1=sp, simm13=SPILL_G1),
        ]
        if self.always_save_cc:
            # Ablation: explicit save/restore at every site (what a tool
            # without live-register analysis must do).
            t_cc = free[3]
            words = ([codec.encode("rdpsr", rd=t_cc)] + words
                     + [codec.encode("wrpsr", rs1=t_cc)])
            self.cc_saved_sites += 1
            return CodeSnippet(words,
                               alloc_regs=(t_ea, t_idx, t_state, t_cc),
                               clobbers_cc=False)
        return CodeSnippet(words, alloc_regs=(t_ea, t_idx, t_state),
                           clobbers_cc=True)

    def _is_private(self, instruction):
        """Static filter: stack-relative accesses are private data."""
        sp = self.exec.conventions.sp_reg
        fp = getattr(self.exec.conventions, "fp_reg", None)
        rs1 = instruction.field("rs1")
        return rs1 == sp or (fp is not None and rs1 == fp)

    def instrument(self):
        for routine in self.exec.all_routines():
            cfg = routine.control_flow_graph()
            if cfg.cti_in_slot:
                # Paper §3.1: un-editable delayed-delayed flow.
                routine.delete_control_flow_graph()
                continue
            for block in cfg.blocks:
                for index, (addr, instruction) in enumerate(
                    block.instructions
                ):
                    if not instruction.is_memory \
                            or self._is_private(instruction):
                        continue
                    snippet = self._test_snippet(instruction)
                    if block.editable:
                        block.add_code_before(index, snippet)
                        self.sites += 1
                    else:
                        parent = _editable_predecessor(block)
                        if parent is None:
                            continue
                        cti_index = len(parent.instructions) - 1
                        cti = parent.instructions[cti_index][1]
                        if instruction.reads() & cti.writes():
                            continue
                        parent.add_code_before(cti_index, snippet)
                        self.sites += 1
            routine.produce_edited_routine()
            routine.delete_control_flow_graph()
        return self

    def edited_image(self):
        image = self.exec.edited_image()
        image.entry = self.exec.edited_addr(self.exec.start_address())
        return image

    # ------------------------------------------------------------------
    def run(self, stdin_text="", protocol=None):
        """Run with a coherence-protocol stand-in attached.

        The default protocol counts the fault and upgrades the block to
        ReadWrite (as if fetched with ownership).
        """
        from repro.binfmt import layout as binlayout

        image = self.edited_image()
        brk = binlayout.align_up(
            self.exec.image.address_limit() + binlayout.HEAP_GAP, 16
        )
        simulator = Simulator(image, stdin_text=stdin_text, brk_base=brk)
        faults = []
        state_base = self.state_base
        memory = simulator.memory

        def default_protocol(addr):
            faults.append(addr)
            block = (addr & ((1 << ADDR_BITS) - 1)) >> BLOCK_SHIFT
            memory.store(state_base + block, 1, STATE_READWRITE)
            return 0

        simulator.syscalls.fault_hook = protocol or default_protocol
        simulator.run()
        return simulator, faults


def _editable_predecessor(block):
    for edge in block.pred:
        if edge.src.editable and edge.src.kind == "normal":
            return edge.src
    return None
