"""qpt "classic": the ad-hoc baseline profiler for the Table 1 comparison.

This deliberately mirrors how pre-EEL rewriters worked (paper sections 1
and 5 and the Larus-Ball paper it cites): no CFG, no liveness, no
symbol-table refinement.

* Basic-block leaders come from a single linear scan (symbols, branch
  targets, post-transfer addresses).
* Every original word keeps a slot in the output, so a complete
  one-to-one address map makes branch fixup trivial.
* Counters use fixed scratch registers (%g6/%g7) by convention instead
  of register scavenging.
* Indirect jumps always go through run-time address translation —
  the ad-hoc tool has no slicing, so it cannot find dispatch tables.

The contrast with qpt2 is the paper's Table 1: the ad-hoc tool is
smaller and faster but fragile, machine-bound, and far less precise
about where instrumentation can go.
"""

from repro.binfmt.image import Image, SEC_EXEC, SEC_WRITE, Section, Symbol
from repro.isa import bits, get_codec, get_conventions
from repro.isa.base import Category

# By convention the ad-hoc tool steals the application globals %g2/%g3
# (SPARC reserves them for applications; compilers leave them alone).
SCRATCH_G6 = 2
SCRATCH_G7 = 3

COUNTER_BASE_NAME = "__classic_counts"


class ClassicProfiler:
    """Ad-hoc block profiler: linear scan, per-word relocation map."""

    def __init__(self, image):
        if image.arch != "sparc":
            raise ValueError("the ad-hoc profiler only supports SPARC")
        self.image = image
        self.codec = get_codec(image.arch)
        self.conventions = get_conventions(image.arch)
        self.text = image.get_section(".text")
        self.counter_meaning = []
        self.objects_allocated = 0  # for the allocation-census experiment

    # ------------------------------------------------------------------
    def _decode(self, addr):
        self.objects_allocated += 1
        return self.codec.decode(self.text.word_at(addr))

    def _leaders(self):
        """Blocks by linear scan: symbols, branch targets, post-CTI."""
        leaders = set()
        for symbol in self.image.symbols:
            if symbol.section == ".text" and symbol.value % 4 == 0:
                leaders.add(symbol.value)
        leaders.add(self.image.entry)
        addr = self.text.vaddr
        prev_was_cti = False
        prev_was_delay = False
        while addr < self.text.end:
            inst = self._decode(addr)
            if prev_was_delay:
                leaders.add(addr)
            prev_was_delay = prev_was_cti and inst.category is not \
                Category.INVALID
            prev_was_cti = (inst.category.is_control
                            and inst.category is not Category.SYSTEM
                            and inst.is_delayed)
            if inst.category is Category.BRANCH or (
                inst.category is Category.JUMP
            ):
                target = self.codec.control_target(inst, addr)
                if target is not None and self.text.contains(target):
                    leaders.add(target)
            addr += 4
        return leaders

    def _delay_addrs(self):
        """Addresses sitting in a delay slot (no counter inserted there)."""
        delays = set()
        addr = self.text.vaddr
        while addr < self.text.end:
            inst = self._decode(addr)
            if inst.category.is_control and inst.is_delayed \
                    and inst.category is not Category.SYSTEM:
                delays.add(addr + 4)
            addr += 4
        return delays

    # ------------------------------------------------------------------
    def instrument(self):
        """Produce the instrumented image."""
        image = self.image
        codec = self.codec
        conventions = self.conventions
        text = self.text
        leaders = self._leaders()
        delays = self._delay_addrs()

        new_base = _align(image.address_limit() + 0x1000)
        counter_base = 0x0200_0000
        trans_base = counter_base + 4 * (len(leaders) + 16)

        # Pass 1: assign new addresses (every original word gets a slot).
        new_addr = {}  # jump-target map: points at the counter preamble
        word_pos = {}  # where the original word itself lands
        cursor = new_base
        counter_of = {}
        addr = text.vaddr
        while addr < text.end:
            new_addr[addr] = cursor
            if addr in leaders and addr not in delays:
                counter_of[addr] = len(self.counter_meaning)
                self.counter_meaning.append(addr)
                cursor += 16  # fixed 4-word counter preamble
            word_pos[addr] = cursor
            inst = self._decode(addr)
            if inst.category is Category.JUMP_INDIRECT:
                cursor += 4 * 6  # translation stub replaces the jump
            else:
                cursor += 4
            addr += 4

        # Pass 2: emit.
        words = []
        addr = text.vaddr
        while addr < text.end:
            if addr in counter_of:
                caddr = counter_base + 4 * counter_of[addr]
                words.extend(conventions.counter_increment(
                    caddr, SCRATCH_G6, SCRATCH_G7))
            inst = self._decode(addr)
            here = word_pos[addr]
            if inst.category is Category.JUMP_INDIRECT:
                words.extend(self._translation_stub(inst, trans_base,
                                                    text.vaddr))
            elif inst.category is Category.BRANCH or \
                    inst.category is Category.JUMP or \
                    inst.category is Category.CALL:
                target = codec.control_target(inst, addr)
                if target is not None and target in new_addr:
                    words.append(codec.with_control_target(
                        inst.word, here, new_addr[target]))
                else:
                    words.append(inst.word)
            else:
                words.append(inst.word)
            addr += 4

        out = self._build(words, new_base, counter_base, trans_base,
                          new_addr, len(self.counter_meaning))
        return out

    def _translation_stub(self, inst, trans_base, text_base):
        codec = self.codec
        conventions = self.conventions
        fields = {"rd": SCRATCH_G6, "rs1": inst.get_field("rs1")}
        if inst.has_field("simm13"):
            fields["simm13"] = inst.get_field("simm13")
        else:
            fields["rs2"] = inst.get_field("rs2")
        words = [codec.encode("add", **fields)]
        load_const = conventions.load_const(SCRATCH_G7,
                                            trans_base - text_base)
        while len(load_const) < 2:
            load_const.append(codec.nop_word)
        words.extend(load_const)
        words.append(codec.encode("add", rd=SCRATCH_G7, rs1=SCRATCH_G6,
                                  rs2=SCRATCH_G7))
        words.append(codec.encode("ld", rd=SCRATCH_G7, rs1=SCRATCH_G7,
                                  simm13=0))
        words.append(codec.encode("jmpl", rd=0, rs1=SCRATCH_G7, simm13=0))
        return words

    def _build(self, words, new_base, counter_base, trans_base, new_addr,
               counter_count):
        source = self.image
        image = Image(source.arch, kind="exec")
        for section in source.sections.values():
            copy = Section(section.name, vaddr=section.vaddr,
                           flags=section.flags,
                           data=bytearray(section.data))
            copy.nobits_size = section.nobits_size
            image.add_section(copy)
        image.symbols = [
            Symbol(s.name, s.value, kind=s.kind, binding=s.binding,
                   size=s.size, section=s.section)
            for s in source.symbols
        ]
        new_text = Section(".text.instrumented", vaddr=new_base,
                           flags=SEC_EXEC)
        for word in words:
            new_text.append_word(word)
        image.add_section(new_text)

        counters = Section(COUNTER_BASE_NAME, vaddr=counter_base,
                           flags=SEC_WRITE,
                           data=bytearray(4 * (counter_count + 16)))
        image.add_section(counters)

        translation = Section("__classic_translation", vaddr=trans_base,
                              flags=SEC_WRITE,
                              data=bytearray(self.text.size))
        for orig, new in new_addr.items():
            translation.set_word(trans_base + (orig - self.text.vaddr), new)
        image.add_section(translation)

        image.entry = new_addr[source.entry]
        self.counter_base = counter_base
        return image

    # ------------------------------------------------------------------
    def counts(self, simulator):
        return {
            addr: simulator.memory.load_word(self.counter_base + 4 * index)
            for index, addr in enumerate(self.counter_meaning)
        }


def _align(value):
    return (value + 0xFFF) & ~0xFFF


def profile_classic(image, stdin_text=""):
    from repro.sim import run_image

    tool = ClassicProfiler(image)
    out = tool.instrument()
    simulator = run_image(out, stdin_text=stdin_text)
    return tool, simulator
