"""Active Memory: cache simulation by editing (paper sections 1 and 5).

Lebeck & Wood's Active Memory lowered cache simulation to a 2-7x
slowdown by inserting a quick state test before each memory reference
instead of post-processing an address trace.  The reproduction:

* a **state table** in the edited program's address space holds one byte
  per cache block: 0 = the block is resident, 1 = not resident;
* before every load/store a snippet computes the effective address,
  checks the state byte, and on a miss traps to the cache handler;
* the handler (host side, standing in for the in-process handler code)
  runs the cache model and updates the state bytes — marking the fetched
  block resident and the evicted block non-resident — so subsequent
  accesses to resident blocks take only the inline fast path.

The trace-driven baseline for the comparison collects the full address
trace (via a simulator hook) and post-processes it through the same
cache model; both must report identical miss counts.
"""

from repro.core import Executable
from repro.core.snippet import CodeSnippet
from repro.sim import Simulator
from repro.sim.syscalls import SYS_CACHE_HANDLER

BLOCK_SHIFT = 5  # 32-byte cache blocks
ADDR_BITS = 24  # state table covers a 16MB wrapped address space
TABLE_SIZE = 1 << (ADDR_BITS - BLOCK_SHIFT)

# Tool spill slots below the stack pointer, distinct from EEL's own
# spill area (which starts at -64 and grows down a few words).
SPILL_O0 = -120
SPILL_G1 = -124


class DirectMappedCache:
    """The cache model shared by Active Memory and the trace baseline."""

    def __init__(self, size_bytes=8192, block_shift=BLOCK_SHIFT):
        self.block_shift = block_shift
        self.num_lines = size_bytes >> block_shift
        self.lines = [None] * self.num_lines
        self.misses = 0
        self.accesses = 0

    def block_of(self, addr):
        return (addr & ((1 << ADDR_BITS) - 1)) >> self.block_shift

    def access(self, addr):
        """Returns the evicted block number (or None) on a miss; False on
        a hit."""
        self.accesses += 1
        block = self.block_of(addr)
        line = block % self.num_lines
        resident = self.lines[line]
        if resident == block:
            return False
        self.misses += 1
        self.lines[line] = block
        return resident


class ActiveMemory:
    """Instrument a program with inline cache-state tests."""

    def __init__(self, image, cache_size=8192, jobs=1, only_routines=None):
        if image.arch != "sparc":
            raise ValueError("Active Memory tool currently targets SPARC")
        from repro.tools.common import routine_filter

        self.exec = Executable(image)
        self.exec.read_contents(jobs=jobs)
        self.only = routine_filter(self.exec, only_routines)
        self.cache_size = cache_size
        # All blocks start non-resident (state byte 1).
        self.state_base = self.exec.add_data(
            "__am_state", TABLE_SIZE, initial=b"\x01" * TABLE_SIZE
        )
        self.sites = 0

    # ------------------------------------------------------------------
    def _test_snippet(self, instruction):
        """The inline access test for one load/store instruction."""
        conventions = self.exec.conventions
        codec = self.exec.codec
        # Placeholder registers must not collide with the registers the
        # instrumented instruction itself uses (the snippet embeds them in
        # its first word, and register rebinding rewrites placeholders
        # wherever they appear).
        avoid = instruction.reads() | {8, 1, 14}  # %o0, %g1, %sp are fixed
        free = [r for r in range(16, 24) if r not in avoid]
        t_ea, t_idx, t_state = free[0], free[1], free[2]

        fields = {"rd": t_ea, "rs1": instruction.field("rs1")}
        if instruction.has_field("simm13"):
            fields["simm13"] = instruction.field("simm13")
        else:
            fields["rs2"] = instruction.field("rs2")

        words = [
            codec.encode("add", **fields),  # effective address
            codec.encode("sll", rd=t_idx, rs1=t_ea, simm13=32 - ADDR_BITS),
            codec.encode("srl", rd=t_idx, rs1=t_idx,
                         simm13=(32 - ADDR_BITS) + BLOCK_SHIFT),
            codec.encode("sethi", rd=t_state, imm22=self.state_base >> 10),
            codec.encode("ldub", rd=t_state, rs1=t_state, rs2=t_idx),
            codec.encode("subcc", rd=0, rs1=t_state, simm13=0),
            codec.encode("be", disp22=9),  # hit: skip the 7-word miss path
            codec.nop_word,
            # Miss path: trap to the cache handler with the address.
            codec.encode("st", rd=8, rs1=14, simm13=SPILL_O0),
            codec.encode("st", rd=1, rs1=14, simm13=SPILL_G1),
            codec.encode("or", rd=8, rs1=0, rs2=t_ea),
            codec.encode("or", rd=1, rs1=0, simm13=SYS_CACHE_HANDLER),
            codec.encode("ta", trap_num=0),
            codec.encode("ld", rd=8, rs1=14, simm13=SPILL_O0),
            codec.encode("ld", rd=1, rs1=14, simm13=SPILL_G1),
        ]
        return CodeSnippet(words, alloc_regs=(t_ea, t_idx, t_state),
                           clobbers_cc=True)

    def instrument(self):
        from repro.obs import metrics as _metrics
        from repro.obs.trace import span as _span

        with _span("active_memory.instrument",
                   cache_size=self.cache_size) as sp:
            self._instrument_routines()
            sp.set(sites=self.sites)
        _metrics.counter("active_memory.sites").inc(self.sites)
        return self

    def _instrument_routines(self):
        for routine in self.exec.all_routines():
            if self.only is not None and routine.name not in self.only:
                continue
            cfg = routine.control_flow_graph()
            if cfg.cti_in_slot:
                # Paper §3.1: un-editable delayed-delayed flow.
                routine.delete_control_flow_graph()
                continue
            for block in cfg.blocks:
                for index, (addr, instruction) in enumerate(
                    block.instructions
                ):
                    if not instruction.is_memory:
                        continue
                    if block.editable:
                        block.add_code_before(
                            index, self._test_snippet(instruction)
                        )
                        self.sites += 1
                        continue
                    # Memory reference in an uneditable delay slot (after a
                    # call/return): the paper's advice is to "find an
                    # alternative location to edit (e.g., before the call)".
                    # The test goes before the control transfer, which is
                    # sound as long as the transfer does not write the
                    # address registers.
                    parent = self._editable_predecessor(block)
                    if parent is None:
                        continue
                    cti_index = len(parent.instructions) - 1
                    cti = parent.instructions[cti_index][1]
                    if instruction.reads() & cti.writes():
                        continue  # cannot hoist; accept the blind spot
                    parent.add_code_before(cti_index,
                                           self._test_snippet(instruction))
                    self.sites += 1
            routine.produce_edited_routine()
            routine.delete_control_flow_graph()

    @staticmethod
    def _editable_predecessor(block):
        for edge in block.pred:
            if edge.src.editable and edge.src.kind == "normal":
                return edge.src
        return None

    def edited_image(self):
        image = self.exec.edited_image()
        image.entry = self.exec.edited_addr(self.exec.start_address())
        return image

    # ------------------------------------------------------------------
    def run(self, stdin_text=""):
        """Run the edited program with the host cache handler attached.

        The heap base is pinned to the *original* image's break so heap
        addresses (and therefore cache behavior) match the baseline run.
        """
        from repro.binfmt import layout as binlayout

        image = self.edited_image()
        brk = binlayout.align_up(
            self.exec.image.address_limit() + binlayout.HEAP_GAP, 16
        )
        simulator = Simulator(image, stdin_text=stdin_text, brk_base=brk)
        cache = DirectMappedCache(self.cache_size)
        state_base = self.state_base
        memory = simulator.memory

        def handler(addr, _unused):
            evicted = cache.access(addr)
            if evicted is False:
                return 0  # raced to residence; nothing to do
            block = cache.block_of(addr)
            memory.store(state_base + block, 1, 0)  # now resident
            if evicted is not None:
                memory.store(state_base + evicted, 1, 1)
            return 0

        simulator.syscalls.cache_hook = handler
        simulator.run()
        return simulator, cache


def trace_driven_misses(image, cache_size=8192, stdin_text=""):
    """Baseline: full address trace through the same cache model."""
    cache = DirectMappedCache(cache_size)

    def hook(is_store, addr, width):
        cache.access(addr)

    simulator = Simulator(image, stdin_text=stdin_text, mem_hook=hook)
    simulator.run()
    return simulator, cache
