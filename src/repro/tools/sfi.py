"""Software fault isolation (sandboxing), after Wahbe et al. (section 1).

Stores (and optionally indirect jump targets) are checked against the
allowed segments before executing.  An access outside the sandbox traps
to the fault handler instead of corrupting foreign state.

Allowed segments (by high address byte): the program's static data /
heap segment (byte 0x00, addresses below 16MB) and the stack segment
(byte 0x7f).  The tool's own spill slots are stack-relative and
therefore always permitted.
"""

from repro.core import Executable
from repro.core.snippet import CodeSnippet
from repro.tools.common import routine_filter
from repro.sim import Simulator
from repro.sim.syscalls import ProtectionFault, SYS_FAULT

SPILL_O0 = -120
SPILL_G1 = -124

DATA_SEGMENT_BYTE = 0x00
STACK_SEGMENT_BYTE = 0x7F


class Sandboxer:
    """Insert store sandboxing checks."""

    def __init__(self, image, check_loads=False, only_routines=None):
        if image.arch != "sparc":
            raise ValueError("SFI tool currently targets SPARC")
        self.exec = Executable(image)
        self.exec.read_contents()
        self.only = routine_filter(self.exec, only_routines)
        self.check_loads = check_loads
        self.sites = 0

    def _check_snippet(self, instruction, addr=None):
        codec = self.exec.codec
        sp = self.exec.conventions.sp_reg
        avoid = instruction.reads() | {8, 1, sp}
        free = [r for r in range(16, 24) if r not in avoid]
        t_ea, t_seg = free[0], free[1]

        fields = {"rd": t_ea, "rs1": instruction.field("rs1")}
        if instruction.has_field("simm13"):
            fields["simm13"] = instruction.field("simm13")
        else:
            fields["rs2"] = instruction.field("rs2")

        words = [
            codec.encode("add", **fields),
            codec.encode("srl", rd=t_seg, rs1=t_ea, simm13=24),
            codec.encode("subcc", rd=0, rs1=t_seg,
                         simm13=DATA_SEGMENT_BYTE),
            codec.encode("be", disp22=12),  # data segment: permitted
            codec.nop_word,
            codec.encode("subcc", rd=0, rs1=t_seg,
                         simm13=STACK_SEGMENT_BYTE),
            codec.encode("be", disp22=9),  # stack segment: permitted
            codec.nop_word,
            codec.encode("st", rd=8, rs1=sp, simm13=SPILL_O0),
            codec.encode("st", rd=1, rs1=sp, simm13=SPILL_G1),
            codec.encode("or", rd=8, rs1=0, rs2=t_ea),
            codec.encode("or", rd=1, rs1=0, simm13=SYS_FAULT),
            codec.encode("ta", trap_num=0),
            codec.encode("ld", rd=8, rs1=sp, simm13=SPILL_O0),
            codec.encode("ld", rd=1, rs1=sp, simm13=SPILL_G1),
        ]
        return CodeSnippet(words, alloc_regs=(t_ea, t_seg), clobbers_cc=True,
                           tag=("sfi.store_check", addr))

    def instrument(self):
        for routine in self.exec.all_routines():
            if self.only is not None and routine.name not in self.only:
                continue
            cfg = routine.control_flow_graph()
            if cfg.cti_in_slot:
                # Paper §3.1: un-editable delayed-delayed flow; the
                # routine stays in place (its stores go unchecked).
                routine.delete_control_flow_graph()
                continue
            for block in cfg.blocks:
                if not block.editable:
                    continue
                for index, (addr, instruction) in enumerate(
                    block.instructions
                ):
                    wanted = instruction.is_store or (
                        self.check_loads and instruction.is_load
                    )
                    if wanted:
                        block.add_code_before(
                            index, self._check_snippet(instruction, addr)
                        )
                        self.sites += 1
            routine.produce_edited_routine()
            routine.delete_control_flow_graph()
        return self

    def edited_image(self):
        image = self.exec.edited_image()
        image.entry = self.exec.edited_addr(self.exec.start_address())
        return image

    def run(self, stdin_text="", on_fault=None):
        """Run sandboxed; violations raise ProtectionFault by default."""
        simulator = Simulator(self.edited_image(), stdin_text=stdin_text)
        if on_fault is not None:
            simulator.syscalls.fault_hook = on_fault
        try:
            simulator.run()
            violation = None
        except ProtectionFault as fault:
            violation = fault.addr
        return simulator, violation
