"""Shared helpers for EEL-based tools."""

from repro.core.snippet import TaggedCodeSnippet


def routine_filter(executable, only_routines):
    """Validated name set for selective instrumentation, or None.

    ``None`` means "instrument everything" (the default).  A routine
    name that does not exist in *executable* is a caller mistake and
    raises ``ValueError`` — a silent no-op would read as success.
    """
    if only_routines is None:
        return None
    names = {str(name) for name in only_routines}
    known = {routine.name for routine in executable.all_routines()}
    unknown = sorted(names - known)
    if unknown:
        raise ValueError("unknown routines: %s" % ", ".join(unknown))
    return names


class CounterArray:
    """A block of 32-bit counters in fresh data space."""

    def __init__(self, executable, name, count_hint=4096):
        self.executable = executable
        self.name = name
        self.base = executable.add_data(name, 4 * count_hint)
        self.capacity = count_hint
        self.used = 0
        self.meaning = []  # caller-defined descriptor per counter

    def allocate(self, descriptor):
        """Reserve one counter; returns its index."""
        if self.used >= self.capacity:
            raise ValueError("counter array %s exhausted" % self.name)
        index = self.used
        self.used += 1
        self.meaning.append(descriptor)
        return index

    def address(self, index):
        return self.base + 4 * index

    def read(self, simulator):
        """Counter values after a simulated run."""
        return [simulator.memory.load_word(self.address(i))
                for i in range(self.used)]


def counter_snippet(executable, counter_addr, tag=None):
    """The Figure 5 snippet: increment the counter at *counter_addr*.

    Uses the conventions' placeholder registers; EEL's register
    allocator rebinds them to dead registers at the insertion point.
    Every snippet carries a provenance tag (the verify subsystem
    surfaces it when a divergence points into instrumented code);
    callers that don't pass one get the counter address as a fallback.
    """
    conventions = executable.conventions
    p0, p1 = conventions.placeholder_regs[0], conventions.placeholder_regs[1]
    words = conventions.counter_increment(counter_addr, p0, p1)
    if tag is None:
        tag = ("counter", counter_addr)
    return TaggedCodeSnippet(words, alloc_regs=(p0, p1), tag=tag)
