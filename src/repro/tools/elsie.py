"""Elsie: a direct-execution architectural simulator built with EEL.

Steven Reinhardt's Elsie (paper section 5) replaces loads, stores, and
system calls in a program with simulator calls, then runs the edited
executable inside the simulator.  This reproduction *deletes* each
memory instruction (the editing capability ATOM lacked — section 2) and
replaces it with a snippet that traps to the memory-system model, which
performs the access against simulated memory and charges latency.
"""

from repro.core import Executable
from repro.core.snippet import CodeSnippet
from repro.sim import Simulator

# Tool syscall numbers (dispatched via SyscallHandler.tool_hooks).
SYS_SIM_LOAD = 16
SYS_SIM_STORE = 17

SPILL_O0 = -120
SPILL_O1 = -116
SPILL_O2 = -112
SPILL_G1 = -124


class ElsieSimulatorBuilder:
    """Rewrite a program so the memory system is simulated."""

    def __init__(self, image, miss_latency=20, only_routines=None):
        if image.arch != "sparc":
            raise ValueError("Elsie tool currently targets SPARC")
        from repro.tools.common import routine_filter

        self.exec = Executable(image)
        self.exec.read_contents()
        self.only = routine_filter(self.exec, only_routines)
        self.miss_latency = miss_latency
        self.replaced = 0

    # ------------------------------------------------------------------
    def _load_snippet(self, instruction, addr=None):
        codec = self.exec.codec
        sp = self.exec.conventions.sp_reg
        rd = instruction.field("rd")
        avoid = instruction.reads() | {8, 9, 10, 1, sp, rd}
        free = [r for r in range(16, 24) if r not in avoid]
        t_ea = free[0]

        fields = {"rd": t_ea, "rs1": instruction.field("rs1")}
        if instruction.has_field("simm13"):
            fields["simm13"] = instruction.field("simm13")
        else:
            fields["rs2"] = instruction.field("rs2")
        width_code = instruction.mem_width | (
            0x100 if instruction.inst.mem_signed else 0
        )

        words = [
            codec.encode("add", **fields),
            codec.encode("st", rd=8, rs1=sp, simm13=SPILL_O0),
            codec.encode("st", rd=9, rs1=sp, simm13=SPILL_O1),
            codec.encode("st", rd=1, rs1=sp, simm13=SPILL_G1),
            codec.encode("or", rd=8, rs1=0, rs2=t_ea),
            codec.encode("or", rd=9, rs1=0, simm13=width_code),
            codec.encode("or", rd=1, rs1=0, simm13=SYS_SIM_LOAD),
            codec.encode("ta", trap_num=0),
            codec.encode("or", rd=rd, rs1=0, rs2=8),  # result to rd
        ]
        for reg, slot in ((9, SPILL_O1), (1, SPILL_G1), (8, SPILL_O0)):
            if reg != rd:
                words.append(codec.encode("ld", rd=reg, rs1=sp, simm13=slot))
        return CodeSnippet(words, alloc_regs=(t_ea,), clobbers_cc=True,
                           tag=("elsie.load", addr))

    def _store_snippet(self, instruction, addr=None):
        codec = self.exec.codec
        sp = self.exec.conventions.sp_reg
        value_reg = instruction.field("rd")
        avoid = instruction.reads() | {8, 9, 10, 1, sp}
        free = [r for r in range(16, 24) if r not in avoid]
        t_ea, t_val = free[0], free[1]

        fields = {"rd": t_ea, "rs1": instruction.field("rs1")}
        if instruction.has_field("simm13"):
            fields["simm13"] = instruction.field("simm13")
        else:
            fields["rs2"] = instruction.field("rs2")

        words = [
            codec.encode("add", **fields),
            codec.encode("or", rd=t_val, rs1=0, rs2=value_reg),
            codec.encode("st", rd=8, rs1=sp, simm13=SPILL_O0),
            codec.encode("st", rd=9, rs1=sp, simm13=SPILL_O1),
            codec.encode("st", rd=10, rs1=sp, simm13=SPILL_O2),
            codec.encode("st", rd=1, rs1=sp, simm13=SPILL_G1),
            codec.encode("or", rd=8, rs1=0, rs2=t_ea),
            codec.encode("or", rd=9, rs1=0, rs2=t_val),
            codec.encode("or", rd=10, rs1=0, simm13=instruction.mem_width),
            codec.encode("or", rd=1, rs1=0, simm13=SYS_SIM_STORE),
            codec.encode("ta", trap_num=0),
            codec.encode("ld", rd=8, rs1=sp, simm13=SPILL_O0),
            codec.encode("ld", rd=9, rs1=sp, simm13=SPILL_O1),
            codec.encode("ld", rd=10, rs1=sp, simm13=SPILL_O2),
            codec.encode("ld", rd=1, rs1=sp, simm13=SPILL_G1),
        ]
        return CodeSnippet(words, alloc_regs=(t_ea, t_val),
                           clobbers_cc=True, tag=("elsie.store", addr))

    # ------------------------------------------------------------------
    def instrument(self):
        for routine in self.exec.all_routines():
            if self.only is not None and routine.name not in self.only:
                continue
            cfg = routine.control_flow_graph()
            if cfg.cti_in_slot:
                # Paper §3.1: un-editable delayed-delayed flow; leave
                # the routine's loads/stores unsimulated.
                routine.delete_control_flow_graph()
                continue
            for block in cfg.blocks:
                if not block.editable:
                    continue
                for index, (addr, instruction) in enumerate(
                    block.instructions
                ):
                    if not instruction.is_memory:
                        continue
                    if instruction.is_load:
                        snippet = self._load_snippet(instruction, addr)
                    else:
                        snippet = self._store_snippet(instruction, addr)
                    block.add_code_before(index, snippet)
                    block.delete_instruction(index)
                    self.replaced += 1
            routine.produce_edited_routine()
            routine.delete_control_flow_graph()
        return self

    def edited_image(self):
        image = self.exec.edited_image()
        image.entry = self.exec.edited_addr(self.exec.start_address())
        return image

    # ------------------------------------------------------------------
    def configure_simulator(self, simulator):
        """Install the memory-model traps on *simulator*.

        Shared between :meth:`run` and the verify cosimulation oracle,
        which must equip the edited side with the same host-side hooks
        the tool itself would use.  Returns the stats dict the hooks
        accumulate into.
        """
        from repro.tools.active_memory import DirectMappedCache

        cache = DirectMappedCache()
        stats = {"loads": 0, "stores": 0, "memory_cycles": 0}
        memory = simulator.memory
        latency = self.miss_latency

        def sim_load(args):
            addr, width_code = args[0], args[1]
            width = width_code & 0xFF
            signed = bool(width_code & 0x100)
            stats["loads"] += 1
            stats["memory_cycles"] += 1
            if cache.access(addr) is not False:
                stats["memory_cycles"] += latency
            return memory.load(addr, width, signed) & 0xFFFFFFFF

        def sim_store(args):
            addr, value, width = args[0], args[1], args[2]
            stats["stores"] += 1
            stats["memory_cycles"] += 1
            if cache.access(addr) is not False:
                stats["memory_cycles"] += latency
            memory.store(addr, width, value)
            return 0

        simulator.syscalls.tool_hooks[SYS_SIM_LOAD] = sim_load
        simulator.syscalls.tool_hooks[SYS_SIM_STORE] = sim_store
        return stats

    def run(self, stdin_text=""):
        """Run inside the memory-system model; returns (simulator, stats)."""
        from repro.binfmt import layout as binlayout

        image = self.edited_image()
        brk = binlayout.align_up(
            self.exec.image.address_limit() + binlayout.HEAP_GAP, 16
        )
        simulator = Simulator(image, stdin_text=stdin_text, brk_base=brk)
        stats = self.configure_simulator(simulator)
        simulator.run()
        return simulator, stats
