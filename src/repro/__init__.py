"""repro: a Python reproduction of EEL (Larus & Schnarr, PLDI 1995).

EEL — the Executable Editing Library — lets tools analyze and modify
compiled programs without knowing the instruction set, the executable
format, or the consequences of moving code.  This package rebuilds the
whole system plus every substrate it needs:

* :mod:`repro.core` — the five EEL abstractions (executable, routine,
  CFG, instruction, snippet) and the analyses beneath them;
* :mod:`repro.isa` / :mod:`repro.spawn` — the machine layer, handwritten
  and generated from concise machine descriptions;
* :mod:`repro.binfmt`, :mod:`repro.asm`, :mod:`repro.minic` — the
  executable format, assembler/linker, and a C-subset compiler that
  generates realistic workload binaries;
* :mod:`repro.sim` — a simulator that runs original and edited programs;
* :mod:`repro.tools` — the paper's applications: profilers, cache
  simulation, fine-grain access control, sandboxing, direct-execution
  simulation.

Start with :class:`repro.core.Executable` (see README.md) or the
command line: ``python -m repro.cli --help``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
