"""Address-space layout conventions for EELF executables.

All executables produced by the linker (and by EEL's editor) follow this
layout; the simulator assumes only what is recorded in section headers,
so edited executables may extend or add sections freely.
"""

# Base virtual address of the text segment.
TEXT_BASE = 0x0000_1000

# Sections are placed on this alignment.
DATA_ALIGN = 0x1000

# The stack grows down from STACK_BASE.
STACK_BASE = 0x7FFF_0000
STACK_SIZE = 0x10_0000

# Gap between the end of .bss and the initial program break (heap).
HEAP_GAP = 0x1000


def align_up(value, alignment=DATA_ALIGN):
    """Round *value* up to a multiple of *alignment*."""
    return (value + alignment - 1) & ~(alignment - 1)
