"""The ``.eel.meta`` section: trusted-producer structural metadata.

Schema ``repro.meta/1``.  A producer that already knows an executable's
structure (the minic driver, the fuzz generator's ground-truth
manifests) can emit a compact binary table of it — routine extents and
entry points, dispatch-table extents with entry counts, the delay-slot
CTI map, data-island ranges — bound to the exact ``.text`` bytes it
describes by a SHA-256 content hash.  The consumer side
(:mod:`repro.core.trust`) *verifies and trusts*: spot-checks the table
against the bytes and, when everything is consistent, hydrates analysis
straight from it instead of running full symbol-table refinement.

Binary layout (all integers big-endian, strings u16 length + UTF-8):

    magic "EELM" | u16 version | u32 text_vaddr | u32 text_size |
    32B sha256(text bytes) |
    u16 nroutines | { str name | u32 start | u32 end | u8 flags |
                      u8 nentries | u32 entry... } |
    u16 ntables   | { u32 addr | u16 count | u8 flags } |
    u16 nctis     | { u32 slot_addr } |
    u16 nislands  | { u32 start | u32 end }

Routine flags: bit0 = hidden.  Table flags: bit0 = extent lies inside
``.text`` (and must be skipped by linear decode sweeps).  The decoder
is strict: bad magic, an unknown version, truncation, undecodable
strings, or trailing bytes all raise :class:`MetaError` — never
anything else — so a corrupted section degrades to the full-refinement
path instead of crashing analysis.
"""

import hashlib
import struct
from dataclasses import dataclass

from repro.binfmt.image import Section

SCHEMA = "repro.meta/1"
SECTION_NAME = ".eel.meta"
MAGIC = b"EELM"
META_VERSION = 1

_ROUTINE_HIDDEN = 1
_TABLE_IN_TEXT = 1


class MetaError(Exception):
    """Malformed or unencodable ``.eel.meta`` payload."""


@dataclass(frozen=True)
class MetaRoutine:
    """One routine's identity: extent, entry points, visibility."""

    name: str
    start: int
    end: int
    entries: tuple = ()
    hidden: bool = False

    def identity(self):
        """The ``routine_identity`` dict shape the cache layer uses."""
        return {"name": self.name, "start": self.start, "end": self.end,
                "entries": list(self.entries),
                "hidden": 1 if self.hidden else 0}


@dataclass(frozen=True)
class MetaDispatch:
    """One dispatch table: base address and entry (word) count."""

    addr: int
    count: int
    in_text: bool = False

    @property
    def size(self):
        return 4 * self.count

    @property
    def end(self):
        return self.addr + 4 * self.count


@dataclass(frozen=True)
class MetaTable:
    """The whole ``repro.meta/1`` table for one executable."""

    text_vaddr: int
    text_size: int
    text_sha256: bytes
    routines: tuple = ()
    tables: tuple = ()
    delay_ctis: tuple = ()  # addresses of CTIs sitting in delay slots
    islands: tuple = ()  # (start, end) data ranges inside .text


def compute_text_hash(image):
    """SHA-256 of the image's ``.text`` bytes (the trust binding)."""
    text = image.sections.get(".text")
    if text is None:
        raise MetaError("image has no .text section to bind metadata to")
    return hashlib.sha256(bytes(text.data)).digest()


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------

def _pack_str(text):
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise MetaError("string too long to encode: %d bytes" % len(raw))
    return struct.pack(">H", len(raw)) + raw


def _u32(value, what):
    if not isinstance(value, int) or not 0 <= value <= 0xFFFF_FFFF:
        raise MetaError("%s out of u32 range: %r" % (what, value))
    return struct.pack(">I", value)


def _u16(value, what):
    if not isinstance(value, int) or not 0 <= value <= 0xFFFF:
        raise MetaError("%s out of u16 range: %r" % (what, value))
    return struct.pack(">H", value)


def encode_meta(meta):
    """Serialize a :class:`MetaTable` to section bytes."""
    if len(meta.text_sha256) != 32:
        raise MetaError("text_sha256 must be 32 bytes")
    out = bytearray()
    out += MAGIC
    out += struct.pack(">H", META_VERSION)
    out += _u32(meta.text_vaddr, "text_vaddr")
    out += _u32(meta.text_size, "text_size")
    out += bytes(meta.text_sha256)
    out += _u16(len(meta.routines), "routine count")
    for routine in meta.routines:
        out += _pack_str(routine.name)
        out += _u32(routine.start, "routine start")
        out += _u32(routine.end, "routine end")
        out += struct.pack(">B", _ROUTINE_HIDDEN if routine.hidden else 0)
        if not 1 <= len(routine.entries) <= 0xFF:
            raise MetaError("routine %s needs 1..255 entries, has %d"
                            % (routine.name, len(routine.entries)))
        out += struct.pack(">B", len(routine.entries))
        for entry in routine.entries:
            out += _u32(entry, "routine entry")
    out += _u16(len(meta.tables), "table count")
    for table in meta.tables:
        out += _u32(table.addr, "table addr")
        out += _u16(table.count, "table entry count")
        out += struct.pack(">B", _TABLE_IN_TEXT if table.in_text else 0)
    out += _u16(len(meta.delay_ctis), "delay-CTI count")
    for addr in meta.delay_ctis:
        out += _u32(addr, "delay-CTI addr")
    out += _u16(len(meta.islands), "island count")
    for start, end in meta.islands:
        out += _u32(start, "island start")
        out += _u32(end, "island end")
    return bytes(out)


# ----------------------------------------------------------------------
# Decoding (strict: any structural problem raises MetaError)
# ----------------------------------------------------------------------

class _Reader:
    def __init__(self, blob):
        self.blob = blob
        self.pos = 0

    def take(self, count):
        if self.pos + count > len(self.blob):
            raise MetaError("truncated .eel.meta payload")
        chunk = self.blob[self.pos:self.pos + count]
        self.pos += count
        return chunk

    def u8(self):
        return self.take(1)[0]

    def u16(self):
        return struct.unpack(">H", self.take(2))[0]

    def u32(self):
        return struct.unpack(">I", self.take(4))[0]

    def string(self):
        try:
            return self.take(self.u16()).decode("utf-8")
        except UnicodeDecodeError as error:
            raise MetaError("undecodable string in .eel.meta: %s" % error)


def decode_meta(blob):
    """Parse section bytes back into a :class:`MetaTable`.

    Raises :class:`MetaError` — and only MetaError — on any malformed
    input: bad magic, unknown version, truncation, trailing garbage.
    """
    reader = _Reader(bytes(blob))
    if reader.take(4) != MAGIC:
        raise MetaError("bad magic; not a repro.meta section")
    version = reader.u16()
    if version != META_VERSION:
        raise MetaError("unsupported repro.meta version %d" % version)
    text_vaddr = reader.u32()
    text_size = reader.u32()
    text_sha256 = reader.take(32)
    routines = []
    for _ in range(reader.u16()):
        name = reader.string()
        start = reader.u32()
        end = reader.u32()
        flags = reader.u8()
        entries = tuple(reader.u32() for _ in range(reader.u8()))
        routines.append(MetaRoutine(name, start, end, entries,
                                    hidden=bool(flags & _ROUTINE_HIDDEN)))
    tables = []
    for _ in range(reader.u16()):
        addr = reader.u32()
        count = reader.u16()
        flags = reader.u8()
        tables.append(MetaDispatch(addr, count,
                                   in_text=bool(flags & _TABLE_IN_TEXT)))
    delay_ctis = tuple(reader.u32() for _ in range(reader.u16()))
    islands = tuple((reader.u32(), reader.u32())
                    for _ in range(reader.u16()))
    if reader.pos != len(reader.blob):
        raise MetaError("%d trailing byte(s) after .eel.meta payload"
                        % (len(reader.blob) - reader.pos))
    return MetaTable(text_vaddr, text_size, text_sha256,
                     routines=tuple(routines), tables=tuple(tables),
                     delay_ctis=delay_ctis, islands=islands)


# ----------------------------------------------------------------------
# Section plumbing
# ----------------------------------------------------------------------

def attach_meta(image, meta):
    """Attach (or replace) the ``.eel.meta`` section carrying *meta*.

    The section lives at vaddr 0 with no flags: it is a carrier for the
    table bytes, not program-visible data, and must never perturb the
    address limit that tool-data and edited-text placement derive from.
    """
    image.sections.pop(SECTION_NAME, None)
    section = Section(SECTION_NAME, vaddr=0, flags=0)
    section.data = bytearray(encode_meta(meta))
    image.add_section(section)
    return image


def has_meta(image):
    return image.has_section(SECTION_NAME)


def extract_meta(image):
    """The image's decoded :class:`MetaTable`, or None when absent.

    Raises :class:`MetaError` when the section exists but is malformed
    — the caller records that as a typed ``format`` rejection.
    """
    section = image.sections.get(SECTION_NAME)
    if section is None:
        return None
    return decode_meta(section.data)
