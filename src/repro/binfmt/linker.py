"""Link EELF object files into an executable.

A deliberately conventional two-pass linker: lay out sections, build the
global symbol table, then apply relocations.  Exists so the workload
corpus can be built from separately assembled/compiled object files the
way the paper's SPEC92 binaries were.
"""

from repro.binfmt import layout
from repro.binfmt.image import (
    BIND_GLOBAL,
    Image,
    SEC_NOBITS,
    Section,
    Symbol,
)
from repro.isa import bits

# Output sections, in address order.
SECTION_ORDER = (".text", ".rodata", ".data", ".bss")

ENTRY_SYMBOL = "_start"


class LinkError(Exception):
    """Undefined or duplicate symbols, bad relocations, etc."""


def link(objects, entry_symbol=ENTRY_SYMBOL):
    """Link *objects* (a list of object Images) into an executable Image."""
    if not objects:
        raise LinkError("no input objects")
    arch = objects[0].arch
    for obj in objects:
        if obj.arch != arch:
            raise LinkError("mixed architectures: %s vs %s" % (arch, obj.arch))
        if obj.kind != "obj":
            raise LinkError("linker input must be object files")

    output = Image(arch, kind="exec")
    # (object index, section name) -> base address in the output.
    bases = {}
    next_addr = layout.TEXT_BASE
    for section_name in SECTION_ORDER:
        merged = Section(section_name, vaddr=next_addr)
        present = False
        for index, obj in enumerate(objects):
            if not obj.has_section(section_name):
                continue
            present = True
            source = obj.get_section(section_name)
            merged.flags |= source.flags
            # Word-align each input chunk.
            if section_name == ".bss":
                merged.nobits_size = _align4(merged.nobits_size)
                bases[(index, section_name)] = merged.vaddr + merged.nobits_size
                merged.nobits_size += source.size
            else:
                while len(merged.data) % 4:
                    merged.data.append(0)
                bases[(index, section_name)] = merged.vaddr + len(merged.data)
                merged.data += source.data
        if present:
            output.add_section(merged)
            next_addr = layout.align_up(merged.end)

    # Global symbol table.
    globals_seen = {}
    for index, obj in enumerate(objects):
        for symbol in obj.symbols:
            base = bases.get((index, symbol.section))
            if base is None:
                raise LinkError(
                    "symbol %s refers to missing section %s"
                    % (symbol.name, symbol.section)
                )
            final = Symbol(
                symbol.name,
                base + symbol.value,
                kind=symbol.kind,
                binding=symbol.binding,
                size=symbol.size,
                section=symbol.section,
            )
            if symbol.binding == BIND_GLOBAL:
                if symbol.name in globals_seen:
                    raise LinkError("duplicate global symbol %r" % symbol.name)
                globals_seen[symbol.name] = final
            output.add_symbol(final)

    # Apply relocations.
    for index, obj in enumerate(objects):
        local_syms = {
            s.name: bases[(index, s.section)] + s.value for s in obj.symbols
        }
        for section_name, relocs in obj.relocations.items():
            base = bases.get((index, section_name))
            if base is None:
                raise LinkError("relocation in missing section %s" % section_name)
            out_section = output.get_section(section_name)
            for reloc in relocs:
                target = _resolve(reloc.symbol, local_syms, globals_seen)
                if target is None:
                    raise LinkError("undefined symbol %r" % reloc.symbol)
                site = base + reloc.offset
                _apply(out_section, site, reloc.kind, target + reloc.addend)

    entry = globals_seen.get(entry_symbol)
    if entry is None:
        raise LinkError("entry symbol %r undefined" % entry_symbol)
    output.entry = entry.value
    return output


def _align4(value):
    return (value + 3) & ~3


def _resolve(name, local_syms, globals_seen):
    # A local definition in the same object wins; otherwise use the global.
    if name in local_syms:
        return local_syms[name]
    symbol = globals_seen.get(name)
    return symbol.value if symbol else None


def _apply(section, site, kind, target):
    """Patch the relocation at address *site* so it refers to *target*."""
    if section.flags & SEC_NOBITS:
        raise LinkError("relocation in .bss")
    word = section.word_at(site)
    if kind == "WORD32":
        section.set_word(site, target)
        return
    if kind == "HI22":
        word = bits.insert(word, 0, 21, target >> 10)
    elif kind == "LO10":
        word = bits.insert(word, 0, 12, target & 0x3FF)
    elif kind == "DISP30":
        word = bits.insert(word, 0, 29, bits.to_s32(target - site) >> 2)
    elif kind == "DISP22":
        delta = bits.to_s32(target - site) >> 2
        if not bits.fits_signed(delta, 22):
            raise LinkError("branch displacement overflow at 0x%x" % site)
        word = bits.insert(word, 0, 21, delta)
    elif kind == "DISP16":
        # MIPS branch: displacement relative to the delay slot.
        delta = bits.to_s32(target - site - 4) >> 2
        if not bits.fits_signed(delta, 16):
            raise LinkError("branch displacement overflow at 0x%x" % site)
        word = bits.insert(word, 0, 15, delta)
    elif kind == "HI16":
        word = bits.insert(word, 0, 15, ((target + 0x8000) >> 16) & 0xFFFF)
    elif kind == "LO16":
        word = bits.insert(word, 0, 15, target & 0xFFFF)
    elif kind == "J26":
        word = bits.insert(word, 0, 25, (target & 0x0FFFFFFF) >> 2)
    else:
        raise LinkError("unknown relocation kind %r" % kind)
    section.set_word(site, word)
