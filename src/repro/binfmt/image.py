"""In-memory model of EELF object files and executables."""

from dataclasses import dataclass, field

from repro.isa import bits

# Section flags.
SEC_EXEC = 1  # contains instructions
SEC_WRITE = 2  # writable at run time
SEC_NOBITS = 4  # occupies address space but no file bytes (.bss)

# Symbol kinds.
SYM_FUNC = "func"
SYM_OBJECT = "object"
SYM_LABEL = "label"  # internal/temporary label (candidates for pruning)

# Symbol bindings.
BIND_GLOBAL = "global"
BIND_LOCAL = "local"

# Relocation kinds.  HI22/LO10/DISP30/DISP22 are SPARC flavored;
# HI16/LO16/J26 are MIPS flavored; WORD32 is a data word on both.
RELOC_KINDS = ("HI22", "LO10", "DISP30", "DISP22", "WORD32", "HI16", "LO16", "J26")


@dataclass
class Section:
    """A named, contiguous region of the address space."""

    name: str
    vaddr: int = 0
    flags: int = 0
    data: bytearray = field(default_factory=bytearray)
    nobits_size: int = 0  # size when SEC_NOBITS

    @property
    def size(self):
        return self.nobits_size if self.flags & SEC_NOBITS else len(self.data)

    @property
    def end(self):
        return self.vaddr + self.size

    @property
    def is_exec(self):
        return bool(self.flags & SEC_EXEC)

    def contains(self, addr):
        return self.vaddr <= addr < self.end

    def word_at(self, addr):
        """Big-endian 32-bit word at virtual address *addr*."""
        offset = addr - self.vaddr
        return int.from_bytes(self.data[offset : offset + 4], "big")

    def set_word(self, addr, word):
        offset = addr - self.vaddr
        self.data[offset : offset + 4] = bits.to_u32(word).to_bytes(4, "big")

    def append_word(self, word):
        self.data += bits.to_u32(word).to_bytes(4, "big")

    def words(self):
        """All words in the section, starting at vaddr."""
        return bits.bytes_to_words(bytes(self.data))


@dataclass
class Symbol:
    """One symbol-table entry."""

    name: str
    value: int
    kind: str = SYM_FUNC
    binding: str = BIND_GLOBAL
    size: int = 0
    section: str = ".text"

    def __repr__(self):
        return "Symbol(%s=0x%x %s/%s)" % (self.name, self.value, self.kind, self.binding)


@dataclass
class Relocation:
    """A fixup applied by the linker: patch *section* at *offset*.

    The patched value is the address of *symbol* plus *addend* (for DISP
    kinds, relative to the patch site's own address).
    """

    offset: int
    kind: str
    symbol: str
    addend: int = 0


class Image:
    """An object file or executable: sections, symbols, relocations."""

    def __init__(self, arch, kind="exec", entry=0):
        if kind not in ("exec", "obj"):
            raise ValueError("image kind must be 'exec' or 'obj'")
        self.arch = arch
        self.kind = kind
        self.entry = entry
        self.sections = {}  # name -> Section
        self.symbols = []  # list of Symbol
        self.relocations = {}  # section name -> [Relocation]

    # -- sections ---------------------------------------------------------
    def add_section(self, section):
        if section.name in self.sections:
            raise ValueError("duplicate section %r" % section.name)
        self.sections[section.name] = section
        return section

    def get_section(self, name):
        return self.sections[name]

    def has_section(self, name):
        return name in self.sections

    def section_at(self, addr):
        """The section containing virtual address *addr*, or None."""
        for section in self.sections.values():
            if section.contains(addr):
                return section
        return None

    def word_at(self, addr):
        section = self.section_at(addr)
        if section is None or section.flags & SEC_NOBITS:
            raise KeyError("address 0x%x not mapped to file bytes" % addr)
        return section.word_at(addr)

    def text_section(self):
        return self.sections[".text"]

    # -- symbols ----------------------------------------------------------
    def add_symbol(self, symbol):
        self.symbols.append(symbol)
        return symbol

    def find_symbol(self, name):
        for symbol in self.symbols:
            if symbol.name == name:
                return symbol
        return None

    def symbols_by_kind(self, kind):
        return [s for s in self.symbols if s.kind == kind]

    def strip(self):
        """Remove all symbols (a stripped executable)."""
        self.symbols = []

    def hide_symbols(self, names):
        """Drop the named symbols, making their routines 'hidden'."""
        names = set(names)
        self.symbols = [s for s in self.symbols if s.name not in names]

    # -- relocations --------------------------------------------------------
    def add_relocation(self, section_name, reloc):
        self.relocations.setdefault(section_name, []).append(reloc)
        return reloc

    # -- convenience -------------------------------------------------------
    def address_limit(self):
        """One past the highest mapped address."""
        return max((s.end for s in self.sections.values()), default=0)
