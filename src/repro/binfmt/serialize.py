"""Binary serialization of EELF images.

File layout (all integers big-endian):

    magic "EELF" | version u16 | kind u8 (0=exec 1=obj) | arch string |
    entry u32 | nsections u16 | nsymbols u32 | nreloc u32 |
    section headers | symbol records | relocation records |
    section data blobs

Strings are encoded as u16 length + UTF-8 bytes.
"""

import json
import struct
import zlib

from repro.binfmt.image import Image, Relocation, SEC_NOBITS, Section, Symbol

MAGIC = b"EELF"
VERSION = 1

# Analysis-result blobs ("EELA"): persisted per-executable analysis
# summaries for repro.cache.  Bump ANALYSIS_VERSION whenever the summary
# contents *or* the semantics of any cached analysis change; the version
# participates in the cache key, so old entries simply stop matching.
ANALYSIS_MAGIC = b"EELA"
# 2: indirect-jump evaluator folds (sum + const), resolving the MIPS
#    rodata dispatch idiom (lw off(base_plus_scaled)) as a table.
# 3: CFG summaries carry the cti_in_slot flag (control transfer in a
#    delay slot — routines tools must refuse to edit).
# 4: blobs carry the per-routine fact table (repro.core.facts): routine
#    entries shrink to identities, and the "facts" section holds every
#    derived fact plus its dependency edges so warm restores hydrate
#    the incremental fact store directly.
# 5: summaries record analysis provenance ("discovery" vs "metadata" —
#    the verified .eel.meta trust path of repro.core.trust), so warm
#    restores report where the routine set originally came from.
ANALYSIS_VERSION = 5


class FormatError(Exception):
    """Malformed EELF file."""


def _pack_str(text):
    raw = text.encode("utf-8")
    return struct.pack(">H", len(raw)) + raw


class _Reader:
    def __init__(self, blob):
        self.blob = blob
        self.pos = 0

    def take(self, count):
        if self.pos + count > len(self.blob):
            raise FormatError("truncated EELF file")
        chunk = self.blob[self.pos : self.pos + count]
        self.pos += count
        return chunk

    def u8(self):
        return self.take(1)[0]

    def u16(self):
        return struct.unpack(">H", self.take(2))[0]

    def u32(self):
        return struct.unpack(">I", self.take(4))[0]

    def s32(self):
        return struct.unpack(">i", self.take(4))[0]

    def string(self):
        return self.take(self.u16()).decode("utf-8")


def image_to_bytes(image):
    """Serialize *image* to EELF bytes."""
    out = bytearray()
    out += MAGIC
    out += struct.pack(">H", VERSION)
    out += struct.pack(">B", 0 if image.kind == "exec" else 1)
    out += _pack_str(image.arch)
    out += struct.pack(">I", image.entry)

    sections = list(image.sections.values())
    reloc_items = [
        (name, reloc)
        for name, relocs in sorted(image.relocations.items())
        for reloc in relocs
    ]
    out += struct.pack(">H", len(sections))
    out += struct.pack(">I", len(image.symbols))
    out += struct.pack(">I", len(reloc_items))

    for section in sections:
        out += _pack_str(section.name)
        out += struct.pack(">IIB", section.vaddr, section.size, section.flags)
    for symbol in image.symbols:
        out += _pack_str(symbol.name)
        out += struct.pack(">I", symbol.value)
        out += _pack_str(symbol.kind)
        out += _pack_str(symbol.binding)
        out += struct.pack(">I", symbol.size)
        out += _pack_str(symbol.section)
    for section_name, reloc in reloc_items:
        out += _pack_str(section_name)
        out += struct.pack(">I", reloc.offset)
        out += _pack_str(reloc.kind)
        out += _pack_str(reloc.symbol)
        out += struct.pack(">i", reloc.addend)
    for section in sections:
        if not section.flags & SEC_NOBITS:
            out += bytes(section.data)
    return bytes(out)


def image_from_bytes(blob):
    """Parse EELF bytes into an :class:`Image`."""
    reader = _Reader(blob)
    if reader.take(4) != MAGIC:
        raise FormatError("bad magic; not an EELF file")
    version = reader.u16()
    if version != VERSION:
        raise FormatError("unsupported EELF version %d" % version)
    kind = "exec" if reader.u8() == 0 else "obj"
    arch = reader.string()
    entry = reader.u32()
    nsections = reader.u16()
    nsymbols = reader.u32()
    nrelocs = reader.u32()

    image = Image(arch, kind=kind, entry=entry)
    headers = []
    for _ in range(nsections):
        name = reader.string()
        vaddr, size, flags = struct.unpack(">IIB", reader.take(9))
        headers.append((name, vaddr, size, flags))
    for _ in range(nsymbols):
        name = reader.string()
        value = reader.u32()
        sym_kind = reader.string()
        binding = reader.string()
        size = reader.u32()
        section = reader.string()
        image.add_symbol(
            Symbol(name, value, kind=sym_kind, binding=binding, size=size,
                   section=section)
        )
    for _ in range(nrelocs):
        section_name = reader.string()
        offset = reader.u32()
        reloc_kind = reader.string()
        symbol = reader.string()
        addend = reader.s32()
        image.add_relocation(
            section_name, Relocation(offset, reloc_kind, symbol, addend)
        )
    for name, vaddr, size, flags in headers:
        section = Section(name, vaddr=vaddr, flags=flags)
        if flags & SEC_NOBITS:
            section.nobits_size = size
        else:
            section.data = bytearray(reader.take(size))
        image.add_section(section)
    return image


def analysis_to_bytes(summary):
    """Serialize an analysis *summary* dict to EELA bytes.

    The payload is canonical JSON (sorted keys, no whitespace) under
    zlib, so identical analyses always produce identical blobs.
    """
    payload = json.dumps(summary, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return (ANALYSIS_MAGIC + struct.pack(">H", ANALYSIS_VERSION)
            + zlib.compress(payload))


def analysis_from_bytes(blob):
    """Parse EELA bytes back into the analysis summary dict."""
    if blob[:4] != ANALYSIS_MAGIC:
        raise FormatError("bad magic; not an EELA analysis blob")
    if len(blob) < 6:
        raise FormatError("truncated EELA analysis blob")
    (version,) = struct.unpack(">H", blob[4:6])
    if version != ANALYSIS_VERSION:
        raise FormatError("unsupported EELA version %d" % version)
    try:
        payload = zlib.decompress(blob[6:])
        return json.loads(payload.decode("utf-8"))
    except (zlib.error, ValueError) as exc:
        raise FormatError("corrupt EELA analysis blob: %s" % exc)


def write_image(image, path):
    """Write *image* to *path* as an EELF file."""
    from repro.obs.trace import span

    with span("binfmt.write_image", path=str(path)) as sp:
        blob = image_to_bytes(image)
        sp.set(bytes=len(blob))
        with open(path, "wb") as handle:
            handle.write(blob)


def read_image(path):
    """Read an EELF file from *path*."""
    from repro.obs.trace import span

    with open(path, "rb") as handle:
        blob = handle.read()
    with span("binfmt.read_image", path=str(path), bytes=len(blob)):
        return image_from_bytes(blob)
