"""EELF: the executable/object file format and linker.

This package plays the role GNU bfd played for EEL (paper section 4): it
hides file-format detail behind an :class:`~repro.binfmt.image.Image`
abstraction that both the EEL core and the toolchain (assembler, linker,
simulator) share.
"""

from repro.binfmt.image import Image, Relocation, Section, Symbol
from repro.binfmt.layout import (
    DATA_ALIGN,
    HEAP_GAP,
    STACK_BASE,
    STACK_SIZE,
    TEXT_BASE,
)
from repro.binfmt.linker import LinkError, link
from repro.binfmt.serialize import FormatError, read_image, write_image

__all__ = [
    "Image",
    "Section",
    "Symbol",
    "Relocation",
    "read_image",
    "write_image",
    "FormatError",
    "link",
    "LinkError",
    "TEXT_BASE",
    "DATA_ALIGN",
    "STACK_BASE",
    "STACK_SIZE",
    "HEAP_GAP",
]
