"""SPARC assembly syntax: operand parsing and pseudo-instructions."""

import re

from repro.asm.assembler import AsmError
from repro.isa.sparc.handwritten import (
    ALU_OP3,
    COND_NUMBER,
    MEM_OPS,
    REG_G0,
    REG_I7,
    REG_O7,
    SPARC_REGS,
)

_REG_ALIASES = {"%sp": "%o6", "%fp": "%i6"}
_HI_RE = re.compile(r"^%hi\((.+)\)$")
_LO_RE = re.compile(r"^%lo\((.+)\)$")

_ALU_MNEMONICS = frozenset(ALU_OP3) | {"save", "restore"}
_LOADS = frozenset(name for name in MEM_OPS if not name.startswith("st"))
_STORES = frozenset(name for name in MEM_OPS if name.startswith("st"))


def _parse_reg(text):
    text = text.strip()
    text = _REG_ALIASES.get(text, text)
    if text in SPARC_REGS:
        number = SPARC_REGS.number(text)
        if number < SPARC_REGS.num_int:
            return number
    raise AsmError("bad register %r" % text)


def _is_reg(text):
    text = text.strip()
    return _REG_ALIASES.get(text, text) in SPARC_REGS


def assemble_sparc(asm, mnemonic, operands):
    """Assemble one SPARC instruction or pseudo-instruction."""
    codec = asm.codec

    if mnemonic == "nop":
        asm.emit_word(codec.nop_word)
        return
    if mnemonic in _ALU_MNEMONICS:
        _alu(asm, mnemonic, operands)
        return
    if mnemonic in _LOADS:
        _load(asm, mnemonic, operands)
        return
    if mnemonic in _STORES:
        _store(asm, mnemonic, operands)
        return
    if mnemonic == "sethi":
        _sethi(asm, operands)
        return
    if mnemonic == "b":
        mnemonic = "ba"
    elif mnemonic == "b,a":
        mnemonic = "ba,a"
    base = mnemonic[1:]
    if mnemonic.startswith("b") and (
        base in COND_NUMBER or (base.endswith(",a") and base[:-2] in COND_NUMBER)
    ):
        _branch(asm, mnemonic, operands)
        return
    if mnemonic == "call":
        _call(asm, operands)
        return
    if mnemonic in ("jmp", "jmpl"):
        _jump(asm, mnemonic, operands)
        return
    if mnemonic == "ret":
        asm.emit_word(codec.encode("jmpl", rd=REG_G0, rs1=REG_I7, simm13=8))
        return
    if mnemonic == "retl":
        asm.emit_word(codec.encode("jmpl", rd=REG_G0, rs1=REG_O7, simm13=8))
        return
    if mnemonic == "ta":
        asm.emit_word(codec.encode("ta", trap_num=asm._parse_const(operands[0])))
        return
    if mnemonic == "rd":
        if operands[0].strip() != "%psr":
            raise AsmError("only rd %psr is supported")
        asm.emit_word(codec.encode("rdpsr", rd=_parse_reg(operands[1])))
        return
    if mnemonic == "wr":
        if operands[1].strip() != "%psr":
            raise AsmError("only wr ..., %psr is supported")
        asm.emit_word(codec.encode("wrpsr", rs1=_parse_reg(operands[0])))
        return
    # Pseudo-instructions.
    if mnemonic == "mov":
        _emit_alu(asm, "or", REG_G0, operands[0], _parse_reg(operands[1]))
        return
    if mnemonic == "cmp":
        _emit_alu(asm, "subcc", _parse_reg(operands[0]), operands[1], REG_G0)
        return
    if mnemonic == "tst":
        asm.emit_word(codec.encode("orcc", rd=REG_G0, rs1=REG_G0,
                                   rs2=_parse_reg(operands[0])))
        return
    if mnemonic == "clr":
        asm.emit_word(codec.encode("or", rd=_parse_reg(operands[0]),
                                   rs1=REG_G0, rs2=REG_G0))
        return
    if mnemonic == "inc":
        reg = _parse_reg(operands[-1])
        amount = asm._parse_const(operands[0]) if len(operands) == 2 else 1
        asm.emit_word(codec.encode("add", rd=reg, rs1=reg, simm13=amount))
        return
    if mnemonic == "dec":
        reg = _parse_reg(operands[-1])
        amount = asm._parse_const(operands[0]) if len(operands) == 2 else 1
        asm.emit_word(codec.encode("sub", rd=reg, rs1=reg, simm13=amount))
        return
    if mnemonic == "set":
        _set(asm, operands)
        return
    if mnemonic == "neg":
        reg = _parse_reg(operands[0])
        dest = _parse_reg(operands[1]) if len(operands) == 2 else reg
        asm.emit_word(codec.encode("sub", rd=dest, rs1=REG_G0, rs2=reg))
        return
    raise AsmError("unknown mnemonic %r" % mnemonic)


def _emit_alu(asm, name, rs1, src2_text, rd):
    """Emit a format-3 instruction whose second source is a reg or imm."""
    codec = asm.codec
    src2_text = src2_text.strip()
    if _is_reg(src2_text):
        asm.emit_word(codec.encode(name, rd=rd, rs1=rs1,
                                   rs2=_parse_reg(src2_text)))
        return
    lo_match = _LO_RE.match(src2_text)
    if lo_match:
        inner = lo_match.group(1)
        if asm._is_symbolic(inner):
            symbol, addend = asm._split_sym_addend(inner)
            asm.emit_reloc("LO10", symbol, addend)
            asm.emit_word(codec.encode(name, rd=rd, rs1=rs1, simm13=0))
        else:
            asm.emit_word(codec.encode(name, rd=rd, rs1=rs1,
                                       simm13=asm._parse_const(inner) & 0x3FF))
        return
    asm.emit_word(codec.encode(name, rd=rd, rs1=rs1,
                               simm13=asm._parse_const(src2_text)))


def _alu(asm, mnemonic, operands):
    if mnemonic == "restore" and not operands:
        asm.emit_word(asm.codec.encode("restore", rd=0, rs1=0, rs2=0))
        return
    if len(operands) != 3:
        raise AsmError("%s expects 3 operands" % mnemonic)
    rs1 = _parse_reg(operands[0])
    rd = _parse_reg(operands[2])
    _emit_alu(asm, mnemonic, rs1, operands[1], rd)


def _sethi(asm, operands):
    codec = asm.codec
    value_text = operands[0].strip()
    rd = _parse_reg(operands[1])
    hi_match = _HI_RE.match(value_text)
    if hi_match:
        inner = hi_match.group(1)
        if asm._is_symbolic(inner):
            symbol, addend = asm._split_sym_addend(inner)
            asm.emit_reloc("HI22", symbol, addend)
            asm.emit_word(codec.encode("sethi", rd=rd, imm22=0))
        else:
            asm.emit_word(codec.encode("sethi", rd=rd,
                                       imm22=asm._parse_const(inner) >> 10))
        return
    asm.emit_word(codec.encode("sethi", rd=rd, imm22=asm._parse_const(value_text)))


def _set(asm, operands):
    """set value, rd: sethi + or (always two words)."""
    codec = asm.codec
    expr = operands[0].strip()
    rd = _parse_reg(operands[1])
    if asm._is_symbolic(expr):
        symbol, addend = asm._split_sym_addend(expr)
        asm.emit_reloc("HI22", symbol, addend)
        asm.emit_word(codec.encode("sethi", rd=rd, imm22=0))
        asm.emit_reloc("LO10", symbol, addend)
        asm.emit_word(codec.encode("or", rd=rd, rs1=rd, simm13=0))
    else:
        value = asm._parse_const(expr) & 0xFFFFFFFF
        asm.emit_word(codec.encode("sethi", rd=rd, imm22=value >> 10))
        asm.emit_word(codec.encode("or", rd=rd, rs1=rd, simm13=value & 0x3FF))


def _branch(asm, mnemonic, operands):
    target = operands[0].strip()
    if not asm._is_symbolic(target):
        raise AsmError("branch target must be a label")
    symbol, addend = asm._split_sym_addend(target)
    asm.emit_reloc("DISP22", symbol, addend)
    asm.emit_word(asm.codec.encode(mnemonic, disp22=0))


def _call(asm, operands):
    target = operands[0].strip()
    if _is_reg(target):
        asm.emit_word(asm.codec.encode("jmpl", rd=REG_O7,
                                       rs1=_parse_reg(target), simm13=0))
        return
    symbol, addend = asm._split_sym_addend(target)
    asm.emit_reloc("DISP30", symbol, addend)
    asm.emit_word(asm.codec.encode("call", disp30=0))


def _parse_address(asm, text):
    """Parse 'reg', 'reg + reg', 'reg + imm', 'reg + %lo(sym)' etc.

    Returns (rs1, rs2_or_None, simm13_or_None, lo_reloc_or_None).
    """
    text = text.strip()
    if text.startswith("[") and text.endswith("]"):
        text = text[1:-1].strip()
    negative = False
    if "+" in text:
        left, right = text.split("+", 1)
    elif re.search(r"\s-\s*", text):
        left, right = re.split(r"\s-\s*", text, 1)
        negative = True
    else:
        left, right = text, None
    rs1 = _parse_reg(left)
    if right is None:
        return rs1, None, 0, None
    right = right.strip()
    if _is_reg(right):
        if negative:
            raise AsmError("cannot subtract a register in an address")
        return rs1, _parse_reg(right), None, None
    lo_match = _LO_RE.match(right)
    if lo_match:
        inner = lo_match.group(1)
        if asm._is_symbolic(inner):
            symbol, addend = asm._split_sym_addend(inner)
            return rs1, None, 0, (symbol, addend)
        return rs1, None, asm._parse_const(inner) & 0x3FF, None
    value = asm._parse_const(right)
    return rs1, None, -value if negative else value, None


def _load(asm, mnemonic, operands):
    rs1, rs2, simm13, lo_reloc = _parse_address(asm, operands[0])
    rd = _parse_reg(operands[1])
    _emit_mem(asm, mnemonic, rd, rs1, rs2, simm13, lo_reloc)


def _store(asm, mnemonic, operands):
    rd = _parse_reg(operands[0])
    rs1, rs2, simm13, lo_reloc = _parse_address(asm, operands[1])
    _emit_mem(asm, mnemonic, rd, rs1, rs2, simm13, lo_reloc)


def _emit_mem(asm, mnemonic, rd, rs1, rs2, simm13, lo_reloc):
    codec = asm.codec
    if lo_reloc is not None:
        symbol, addend = lo_reloc
        asm.emit_reloc("LO10", symbol, addend)
        asm.emit_word(codec.encode(mnemonic, rd=rd, rs1=rs1, simm13=0))
    elif rs2 is not None:
        asm.emit_word(codec.encode(mnemonic, rd=rd, rs1=rs1, rs2=rs2))
    else:
        asm.emit_word(codec.encode(mnemonic, rd=rd, rs1=rs1, simm13=simm13))


def _jump(asm, mnemonic, operands):
    codec = asm.codec
    rs1, rs2, simm13, lo_reloc = _parse_address(asm, operands[0])
    rd = REG_G0
    if mnemonic == "jmpl" and len(operands) == 2:
        rd = _parse_reg(operands[1])
    if lo_reloc is not None:
        symbol, addend = lo_reloc
        asm.emit_reloc("LO10", symbol, addend)
        asm.emit_word(codec.encode("jmpl", rd=rd, rs1=rs1, simm13=0))
    elif rs2 is not None:
        asm.emit_word(codec.encode("jmpl", rd=rd, rs1=rs1, rs2=rs2))
    else:
        asm.emit_word(codec.encode("jmpl", rd=rd, rs1=rs1, simm13=simm13))
