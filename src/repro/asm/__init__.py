"""Assembler and disassembler for the EELF toolchain."""

from repro.asm.assembler import AsmError, Assembler, assemble
from repro.asm.disassembler import disassemble_image, disassemble_section

__all__ = [
    "Assembler",
    "AsmError",
    "assemble",
    "disassemble_image",
    "disassemble_section",
]
