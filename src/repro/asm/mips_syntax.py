"""MIPS assembly syntax: operand parsing and pseudo-instructions."""

import re

from repro.asm.assembler import AsmError
from repro.isa.mips.handwritten import (
    I_TYPE,
    MIPS_REGS,
    REGIMM,
    REG_RA,
    REG_ZERO,
    R_TYPE,
)

_MEM_RE = re.compile(r"^(.*)\(\s*(\$\w+)\s*\)$")
_HI_RE = re.compile(r"^%hi\((.+)\)$")
_LO_RE = re.compile(r"^%lo\((.+)\)$")

_REG3 = {"addu", "subu", "and", "or", "xor", "nor", "slt", "sltu"}
_REG3V = {"sllv", "srlv", "srav"}
_SHIFTS = {"sll", "srl", "sra"}
_IMM = {"addiu", "slti", "sltiu"}
_IMMU = {"andi", "ori", "xori"}
_LOADS = {"lb", "lh", "lw", "lbu", "lhu"}
_STORES = {"sb", "sh", "sw"}
_BRANCH2 = {"beq", "bne", "beql", "bnel"}
_BRANCH1 = {"blez", "bgtz", "blezl", "bgtzl"} | set(REGIMM)


def _parse_reg(text):
    text = text.strip()
    if text in MIPS_REGS:
        number = MIPS_REGS.number(text)
        if number < MIPS_REGS.num_int:
            return number
    if re.match(r"^\$\d+$", text):
        number = int(text[1:])
        if 0 <= number < 32:
            return number
    raise AsmError("bad register %r" % text)


def assemble_mips(asm, mnemonic, operands):
    """Assemble one MIPS instruction or pseudo-instruction."""
    codec = asm.codec

    if mnemonic == "nop":
        asm.emit_word(codec.nop_word)
        return
    if mnemonic in _REG3:
        rd, rs, rt = (_parse_reg(op) for op in operands)
        asm.emit_word(codec.encode(mnemonic, rd=rd, rs=rs, rt=rt))
        return
    if mnemonic in _REG3V:
        rd, rt, rs = (_parse_reg(op) for op in operands)
        asm.emit_word(codec.encode(mnemonic, rd=rd, rs=rs, rt=rt))
        return
    if mnemonic in _SHIFTS:
        rd = _parse_reg(operands[0])
        rt = _parse_reg(operands[1])
        shamt = asm._parse_const(operands[2])
        asm.emit_word(codec.encode(mnemonic, rd=rd, rt=rt, shamt=shamt))
        return
    if mnemonic in _IMM:
        rt = _parse_reg(operands[0])
        rs = _parse_reg(operands[1])
        _emit_imm(asm, mnemonic, rt, rs, operands[2], signed=True)
        return
    if mnemonic in _IMMU:
        rt = _parse_reg(operands[0])
        rs = _parse_reg(operands[1])
        _emit_imm(asm, mnemonic, rt, rs, operands[2], signed=False)
        return
    if mnemonic == "lui":
        rt = _parse_reg(operands[0])
        value_text = operands[1].strip()
        hi_match = _HI_RE.match(value_text)
        if hi_match:
            inner = hi_match.group(1)
            if asm._is_symbolic(inner):
                symbol, addend = asm._split_sym_addend(inner)
                asm.emit_reloc("HI16", symbol, addend)
                asm.emit_word(codec.encode("lui", rt=rt, uimm16=0))
            else:
                value = asm._parse_const(inner)
                asm.emit_word(codec.encode("lui", rt=rt,
                                           uimm16=((value + 0x8000) >> 16) & 0xFFFF))
        else:
            asm.emit_word(codec.encode("lui", rt=rt,
                                       uimm16=asm._parse_const(value_text) & 0xFFFF))
        return
    if mnemonic in _LOADS or mnemonic in _STORES:
        _memory(asm, mnemonic, operands)
        return
    if mnemonic in _BRANCH2:
        rs = _parse_reg(operands[0])
        rt = _parse_reg(operands[1])
        _emit_branch(asm, mnemonic, operands[2], rs=rs, rt=rt)
        return
    if mnemonic in _BRANCH1:
        rs = _parse_reg(operands[0])
        _emit_branch(asm, mnemonic, operands[1], rs=rs)
        return
    if mnemonic in ("j", "jal"):
        symbol, addend = asm._split_sym_addend(operands[0].strip())
        asm.emit_reloc("J26", symbol, addend)
        asm.emit_word(codec.encode(mnemonic, target26=0))
        return
    if mnemonic == "jr":
        asm.emit_word(codec.encode("jr", rs=_parse_reg(operands[0])))
        return
    if mnemonic == "jalr":
        if len(operands) == 1:
            asm.emit_word(codec.encode("jalr", rd=REG_RA,
                                       rs=_parse_reg(operands[0])))
        else:
            asm.emit_word(codec.encode("jalr", rd=_parse_reg(operands[0]),
                                       rs=_parse_reg(operands[1])))
        return
    if mnemonic == "syscall":
        asm.emit_word(codec.encode("syscall"))
        return
    if mnemonic in ("mfhi", "mflo"):
        asm.emit_word(codec.encode(mnemonic, rd=_parse_reg(operands[0])))
        return
    if mnemonic in ("mult", "multu", "div", "divu"):
        rs = _parse_reg(operands[0])
        rt = _parse_reg(operands[1])
        asm.emit_word(codec.encode(mnemonic, rs=rs, rt=rt))
        return
    # Pseudo-instructions.
    if mnemonic == "move":
        rd = _parse_reg(operands[0])
        rs = _parse_reg(operands[1])
        asm.emit_word(codec.encode("addu", rd=rd, rs=rs, rt=REG_ZERO))
        return
    if mnemonic == "li":
        _li(asm, operands)
        return
    if mnemonic == "la":
        _la(asm, operands)
        return
    if mnemonic == "b":
        _emit_branch(asm, "beq", operands[0], rs=REG_ZERO, rt=REG_ZERO)
        return
    if mnemonic == "beqz":
        _emit_branch(asm, "beq", operands[1], rs=_parse_reg(operands[0]),
                     rt=REG_ZERO)
        return
    if mnemonic == "bnez":
        _emit_branch(asm, "bne", operands[1], rs=_parse_reg(operands[0]),
                     rt=REG_ZERO)
        return
    if mnemonic == "negu":
        rd = _parse_reg(operands[0])
        rs = _parse_reg(operands[1])
        asm.emit_word(codec.encode("subu", rd=rd, rs=REG_ZERO, rt=rs))
        return
    raise AsmError("unknown mnemonic %r" % mnemonic)


def _emit_imm(asm, mnemonic, rt, rs, text, signed):
    codec = asm.codec
    text = text.strip()
    lo_match = _LO_RE.match(text)
    if lo_match:
        inner = lo_match.group(1)
        if asm._is_symbolic(inner):
            symbol, addend = asm._split_sym_addend(inner)
            asm.emit_reloc("LO16", symbol, addend)
            if signed:
                asm.emit_word(codec.encode(mnemonic, rt=rt, rs=rs, imm16=0))
            else:
                asm.emit_word(codec.encode(mnemonic, rt=rt, rs=rs, uimm16=0))
            return
        text = str(asm._parse_const(inner) & 0xFFFF)
    value = asm._parse_const(text)
    if signed:
        asm.emit_word(codec.encode(mnemonic, rt=rt, rs=rs, imm16=value))
    else:
        asm.emit_word(codec.encode(mnemonic, rt=rt, rs=rs, uimm16=value & 0xFFFF))


def _memory(asm, mnemonic, operands):
    codec = asm.codec
    rt = _parse_reg(operands[0])
    match = _MEM_RE.match(operands[1].strip())
    if not match:
        raise AsmError("bad memory operand %r" % operands[1])
    offset_text = match.group(1).strip()
    rs = _parse_reg(match.group(2))
    lo_match = _LO_RE.match(offset_text) if offset_text else None
    if lo_match:
        inner = lo_match.group(1)
        if asm._is_symbolic(inner):
            symbol, addend = asm._split_sym_addend(inner)
            asm.emit_reloc("LO16", symbol, addend)
            asm.emit_word(codec.encode(mnemonic, rt=rt, rs=rs, imm16=0))
            return
        offset_text = str(asm._parse_const(inner) & 0xFFFF)
    offset = asm._parse_const(offset_text) if offset_text else 0
    asm.emit_word(codec.encode(mnemonic, rt=rt, rs=rs, imm16=offset))


def _emit_branch(asm, mnemonic, target_text, rs, rt=None):
    target_text = target_text.strip()
    if not asm._is_symbolic(target_text):
        raise AsmError("branch target must be a label")
    symbol, addend = asm._split_sym_addend(target_text)
    asm.emit_reloc("DISP16", symbol, addend)
    fields = {"rs": rs, "imm16": 0}
    if rt is not None and mnemonic in _BRANCH2:
        fields["rt"] = rt
    asm.emit_word(asm.codec.encode(mnemonic, **fields))


def _li(asm, operands):
    codec = asm.codec
    rt = _parse_reg(operands[0])
    value = asm._parse_const(operands[1]) & 0xFFFFFFFF
    signed = value - 0x100000000 if value & 0x80000000 else value
    if -0x8000 <= signed <= 0x7FFF:
        asm.emit_word(codec.encode("addiu", rt=rt, rs=REG_ZERO, imm16=signed))
    elif value <= 0xFFFF:
        asm.emit_word(codec.encode("ori", rt=rt, rs=REG_ZERO, uimm16=value))
    else:
        asm.emit_word(codec.encode("lui", rt=rt, uimm16=(value >> 16) & 0xFFFF))
        if value & 0xFFFF:
            asm.emit_word(codec.encode("ori", rt=rt, rs=rt,
                                       uimm16=value & 0xFFFF))


def _la(asm, operands):
    """la rt, sym: lui %hi / addiu %lo (two words, both relocated)."""
    codec = asm.codec
    rt = _parse_reg(operands[0])
    symbol, addend = asm._split_sym_addend(operands[1].strip())
    asm.emit_reloc("HI16", symbol, addend)
    asm.emit_word(codec.encode("lui", rt=rt, uimm16=0))
    asm.emit_reloc("LO16", symbol, addend)
    asm.emit_word(codec.encode("addiu", rt=rt, rs=rt, imm16=0))
