"""Disassemble EELF images for inspection and debugging."""

from repro.isa import get_codec


def disassemble_section(image, section_name=".text", symbols=True,
                        annotations=None):
    """Yield formatted lines for every word in *section_name*.

    *annotations* maps addresses to extra comment lines emitted before
    the word at that address (the CLI uses it to mark routine starts
    found by analysis, including hidden routines with no symbol).
    """
    codec = get_codec(image.arch)
    section = image.get_section(section_name)
    by_addr = {}
    if symbols:
        for symbol in image.symbols:
            if symbol.section == section_name:
                by_addr.setdefault(symbol.value, []).append(symbol.name)
    pc = section.vaddr
    for word in section.words():
        if annotations is not None and pc in annotations:
            yield annotations[pc]
        for name in by_addr.get(pc, ()):
            yield "%s:" % name
        yield "  0x%06x:  %08x  %s" % (pc, word, codec.disassemble(word, pc))
        pc += 4


def disassemble_image(image):
    """Full-text disassembly of the executable sections of *image*."""
    lines = []
    for name, section in image.sections.items():
        if section.is_exec:
            lines.append("section %s @ 0x%x (%d bytes)" % (name, section.vaddr,
                                                           section.size))
            lines.extend(disassemble_section(image, name))
    return "\n".join(lines)
