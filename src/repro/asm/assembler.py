"""A single-pass assembler producing EELF object files.

All symbolic references — branch targets, %hi/%lo halves, data words —
are emitted as relocations and resolved by the linker, so a single pass
suffices.  Labels become symbol-table entries (kind ``label`` unless a
``.type`` or ``.global`` directive promotes them).

Comment characters: ``!`` (SPARC style), ``#`` (MIPS style), and ``;``.
"""

import re

from repro.binfmt.image import (
    BIND_GLOBAL,
    BIND_LOCAL,
    Image,
    Relocation,
    SEC_EXEC,
    SEC_NOBITS,
    SEC_WRITE,
    Section,
    Symbol,
)
from repro.isa import bits, get_codec

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_SYMBOL_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")


class AsmError(Exception):
    """Syntax or semantic error in assembly source."""

    def __init__(self, message, line_number=None):
        if line_number is not None:
            message = "line %d: %s" % (line_number, message)
        super().__init__(message)


class _Operand:
    """A parsed operand: a constant, register, or symbolic expression."""

    def __init__(self, kind, value=0, symbol=None, addend=0):
        self.kind = kind  # "const" | "reg" | "sym" | "hi" | "lo"
        self.value = value
        self.symbol = symbol
        self.addend = addend

    @classmethod
    def const(cls, value):
        return cls("const", value=value)

    @classmethod
    def reg(cls, number):
        return cls("reg", value=number)

    @classmethod
    def sym(cls, name, addend=0, kind="sym"):
        return cls(kind, symbol=name, addend=addend)


class Assembler:
    """Assemble text for one architecture into an object Image."""

    SECTION_FLAGS = {
        ".text": SEC_EXEC,
        ".rodata": 0,
        ".data": SEC_WRITE,
        ".bss": SEC_WRITE | SEC_NOBITS,
    }

    def __init__(self, arch):
        self.arch = arch
        self.codec = get_codec(arch)

    # ------------------------------------------------------------------
    def assemble(self, source, filename="<asm>"):
        self.image = Image(self.arch, kind="obj")
        self.symbols = {}  # name -> Symbol
        self.globals = set()
        self.types = {}  # name -> kind from .type
        self.section = None
        self._ensure_section(".text")
        for number, raw_line in enumerate(source.splitlines(), start=1):
            try:
                self._assemble_line(raw_line)
            except AsmError:
                raise
            except (ValueError, KeyError) as exc:
                raise AsmError(str(exc), number) from exc
        self._finalize_symbols()
        return self.image

    # ------------------------------------------------------------------
    def _ensure_section(self, name):
        if not self.image.has_section(name):
            flags = self.SECTION_FLAGS.get(name)
            if flags is None:
                raise AsmError("unknown section %r" % name)
            self.image.add_section(Section(name, vaddr=0, flags=flags))
        self.section = self.image.get_section(name)

    @property
    def offset(self):
        return self.section.size

    def _assemble_line(self, raw_line):
        line = self._strip_comment(raw_line).strip()
        while True:
            match = _LABEL_RE.match(line)
            if not match:
                break
            self._define_label(match.group(1))
            line = line[match.end():].strip()
        if not line:
            return
        if line.startswith("."):
            self._directive(line)
        else:
            self._instruction(line)

    @staticmethod
    def _strip_comment(line):
        in_string = False
        previous = ""
        for index, char in enumerate(line):
            if char == '"' and previous != "\\":
                in_string = not in_string
            elif char in "!#;" and not in_string:
                return line[:index]
            previous = char
        return line

    def _define_label(self, name):
        if name in self.symbols:
            raise AsmError("duplicate label %r" % name)
        self.symbols[name] = Symbol(
            name,
            self.offset,
            kind="label",
            binding=BIND_LOCAL,
            section=self.section.name,
        )

    def _finalize_symbols(self):
        for name, symbol in self.symbols.items():
            if name in self.globals:
                symbol.binding = BIND_GLOBAL
                if symbol.kind == "label":
                    symbol.kind = "func" if symbol.section == ".text" else "object"
            if name in self.types:
                symbol.kind = self.types[name]
            self.image.add_symbol(symbol)
        for name in self.globals | set(self.types):
            if name not in self.symbols:
                raise AsmError("directive names undefined symbol %r" % name)

    # ------------------------------------------------------------------
    # Directives
    # ------------------------------------------------------------------
    def _directive(self, line):
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        if name in self.SECTION_FLAGS:
            self._ensure_section(name)
        elif name == ".global" or name == ".globl":
            for symbol in rest.replace(",", " ").split():
                self.globals.add(symbol)
        elif name == ".type":
            sym_name, _, kind = rest.partition(",")
            kind = kind.strip()
            if kind not in ("func", "object", "label"):
                raise AsmError("bad .type kind %r" % kind)
            self.types[sym_name.strip()] = kind
        elif name == ".word":
            for expr in self._split_operands(rest):
                self._emit_data_word(expr)
        elif name == ".half":
            for expr in self._split_operands(rest):
                self._emit_int(self._parse_const(expr), 2)
        elif name == ".byte":
            for expr in self._split_operands(rest):
                self._emit_int(self._parse_const(expr), 1)
        elif name == ".asciz" or name == ".ascii":
            text = self._parse_string(rest)
            self.section.data += text.encode("utf-8")
            if name == ".asciz":
                self.section.data.append(0)
        elif name == ".align":
            alignment = self._parse_const(rest)
            self._align(alignment)
        elif name == ".space" or name == ".skip":
            count = self._parse_const(rest)
            if self.section.flags & SEC_NOBITS:
                self.section.nobits_size += count
            else:
                self.section.data += bytes(count)
        else:
            raise AsmError("unknown directive %r" % name)

    def _align(self, alignment):
        if self.section.flags & SEC_NOBITS:
            size = self.section.nobits_size
            self.section.nobits_size = (size + alignment - 1) // alignment * alignment
            return
        while len(self.section.data) % alignment:
            self.section.data.append(0)

    def _emit_int(self, value, width):
        self.section.data += (value & bits.mask(width * 8)).to_bytes(width, "big")

    def _emit_data_word(self, expr):
        expr = expr.strip()
        if self._is_symbolic(expr):
            symbol, addend = self._split_sym_addend(expr)
            self.image.add_relocation(
                self.section.name,
                Relocation(self.offset, "WORD32", symbol, addend),
            )
            self._emit_int(0, 4)
        else:
            self._emit_int(self._parse_const(expr), 4)

    @staticmethod
    def _parse_string(text):
        text = text.strip()
        if len(text) < 2 or text[0] != '"' or text[-1] != '"':
            raise AsmError("expected quoted string")
        return (
            text[1:-1]
            .replace("\\n", "\n")
            .replace("\\t", "\t")
            .replace("\\0", "\0")
            .replace('\\"', '"')
        )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    @staticmethod
    def _is_symbolic(expr):
        expr = expr.strip()
        if _SYMBOL_RE.match(expr):
            try:
                int(expr, 0)
                return False
            except ValueError:
                return True
        if "+" in expr or "-" in expr[1:]:
            head = re.split(r"[+-]", expr, 1)[0].strip()
            return bool(_SYMBOL_RE.match(head)) and not head.isdigit()
        return False

    @staticmethod
    def _split_sym_addend(expr):
        expr = expr.strip()
        match = re.match(r"^([A-Za-z_.$][\w.$]*)\s*([+-]\s*\d+|[+-]\s*0x[0-9a-fA-F]+)?$", expr)
        if not match:
            raise AsmError("bad symbolic expression %r" % expr)
        symbol = match.group(1)
        addend = 0
        if match.group(2):
            addend = int(match.group(2).replace(" ", ""), 0)
        return symbol, addend

    @staticmethod
    def _parse_const(expr):
        expr = expr.strip()
        if len(expr) == 3 and expr[0] == "'" and expr[2] == "'":
            return ord(expr[1])
        return int(expr, 0)

    @staticmethod
    def _split_operands(text):
        """Split on commas that are not inside brackets or parens."""
        out, depth, current = [], 0, []
        for char in text:
            if char in "[(":
                depth += 1
            elif char in "])":
                depth -= 1
            if char == "," and depth == 0:
                out.append("".join(current).strip())
                current = []
            else:
                current.append(char)
        tail = "".join(current).strip()
        if tail:
            out.append(tail)
        return out

    # ------------------------------------------------------------------
    # Instructions
    # ------------------------------------------------------------------
    def _instruction(self, line):
        parts = line.split(None, 1)
        mnemonic = parts[0]
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = self._split_operands(operand_text)
        if self.arch == "sparc":
            from repro.asm.sparc_syntax import assemble_sparc

            assemble_sparc(self, mnemonic, operands)
        else:
            from repro.asm.mips_syntax import assemble_mips

            assemble_mips(self, mnemonic, operands)

    # -- emission helpers used by the per-arch syntax modules ------------
    def emit_word(self, word):
        if not self.section.is_exec:
            raise AsmError("instruction outside .text")
        self.section.append_word(word)

    def emit_reloc(self, kind, symbol, addend=0):
        self.image.add_relocation(
            self.section.name, Relocation(self.offset, kind, symbol, addend)
        )


def assemble(source, arch, filename="<asm>"):
    """Assemble *source* text for *arch* into an object Image."""
    return Assembler(arch).assemble(source, filename)
