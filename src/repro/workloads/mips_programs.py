"""Hand-written MIPS assembly workloads.

minic only targets SPARC (like the paper's compilers), so the MIPS
machine-independence experiments use assembly workloads.  They exercise
delay slots, branch-likely (annulled) variants, jal/jr, and a dispatch
table read through an indirect jump.
"""

MIPS_SUM = """
    .text
    .global main
main:
    addiu $sp, $sp, -8
    sw $ra, 0($sp)
    li $t0, 1
    li $t1, 0
loop:
    addu $t1, $t1, $t0
    addiu $t0, $t0, 1
    li $t2, 101
    bne $t0, $t2, loop
    nop
    move $a0, $t1
    jal print_int
    nop
    li $a0, 10
    jal print_char
    nop
    lw $ra, 0($sp)
    addiu $sp, $sp, 8
    li $v0, 0
    jr $ra
    nop
"""

MIPS_FIB = """
    .text
    .global main
main:
    addiu $sp, $sp, -8
    sw $ra, 0($sp)
    li $a0, 15
    jal fib
    nop
    move $a0, $v0
    jal print_int
    nop
    li $a0, 10
    jal print_char
    nop
    lw $ra, 0($sp)
    addiu $sp, $sp, 8
    li $v0, 0
    jr $ra
    nop

    .global fib
fib:
    slti $t0, $a0, 2
    beql $t0, $zero, recurse    # branch-likely: annulled delay slot
    addiu $sp, $sp, -16
    move $v0, $a0
    jr $ra
    nop
recurse:
    sw $ra, 0($sp)
    sw $s0, 4($sp)
    sw $a0, 8($sp)
    addiu $a0, $a0, -1
    jal fib
    nop
    move $s0, $v0
    lw $a0, 8($sp)
    addiu $a0, $a0, -2
    jal fib
    nop
    addu $v0, $v0, $s0
    lw $ra, 0($sp)
    lw $s0, 4($sp)
    addiu $sp, $sp, 16
    jr $ra
    nop
"""

MIPS_SWITCH = """
    .text
    .global main
main:
    addiu $sp, $sp, -8
    sw $ra, 0($sp)
    li $s0, 0
again:
    sltiu $t0, $s0, 4
    beq $t0, $zero, default
    nop
    la $t1, table
    sll $t2, $s0, 2
    addu $t1, $t1, $t2
    lw $t3, 0($t1)
    jr $t3
    nop
case0:
    li $a0, 100
    b print
    nop
case1:
    li $a0, 111
    b print
    nop
case2:
    li $a0, 122
    b print
    nop
case3:
    li $a0, 133
    b print
    nop
default:
    li $a0, 999
print:
    jal print_int
    nop
    li $a0, 32
    jal print_char
    nop
    addiu $s0, $s0, 1
    li $t0, 6
    bne $s0, $t0, again
    nop
    lw $ra, 0($sp)
    addiu $sp, $sp, 8
    li $v0, 0
    jr $ra
    nop

    .rodata
table:
    .word case0, case1, case2, case3
"""

MIPS_PROGRAMS = {
    "mips_sum": (MIPS_SUM, "5050\n"),
    "mips_fib": (MIPS_FIB, "610\n"),
    "mips_switch": (MIPS_SWITCH, "100 111 122 133 999 999 "),
}
