"""Build workload executables with configurable compiler personalities."""

import functools

from repro.asm import assemble
from repro.binfmt import link
from repro.minic import GCC_LIKE, compile_to_image
from repro.minic.runtime import MIPS_CRT0
from repro.sim import run_image
from repro.workloads.mips_programs import MIPS_PROGRAMS
from repro.workloads.programs import PROGRAMS


def program_names():
    """Names of all minic (SPARC) workload programs."""
    return sorted(PROGRAMS)


def mips_program_names():
    return sorted(MIPS_PROGRAMS)


@functools.lru_cache(maxsize=None)
def build_image(name, options=GCC_LIKE):
    """Compile-and-link workload *name* with *options* (cached)."""
    source = PROGRAMS[name]
    return compile_to_image(source, options)


def build_all(options=GCC_LIKE):
    """Build the whole corpus; returns {name: Image}."""
    return {name: build_image(name, options) for name in program_names()}


@functools.lru_cache(maxsize=None)
def build_mips_image(name):
    source, _ = MIPS_PROGRAMS[name]
    return link([assemble(MIPS_CRT0, "mips"), assemble(source, "mips")])


@functools.lru_cache(maxsize=None)
def expected_output(name, options=GCC_LIKE):
    """Ground-truth output of workload *name* (from an uninstrumented run)."""
    if name in MIPS_PROGRAMS:
        return MIPS_PROGRAMS[name][1]
    return run_image(build_image(name, options)).output
