"""Workload corpus: the SPEC92 stand-in programs and their builder."""

from repro.workloads.builder import (
    build_all,
    build_image,
    build_mips_image,
    expected_output,
    mips_program_names,
    program_names,
)

__all__ = [
    "build_image",
    "build_all",
    "build_mips_image",
    "expected_output",
    "program_names",
    "mips_program_names",
]
