"""minic sources for the workload corpus.

Each program prints deterministic output, so original-vs-edited runs can
be compared exactly.  The mix deliberately covers the constructs the
paper's measurements depend on: dense switches (dispatch tables), deep
recursion (register windows), tail calls, pointer chasing, static
(hideable) functions, and tight array loops.
"""

QSORT = """
int seed;

static int next_rand(void) {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int data[200];

static int partition(int *a, int lo, int hi) {
    int pivot; int i; int j; int t;
    pivot = a[hi];
    i = lo - 1;
    for (j = lo; j < hi; j = j + 1) {
        if (a[j] <= pivot) {
            i = i + 1;
            t = a[i]; a[i] = a[j]; a[j] = t;
        }
    }
    t = a[i + 1]; a[i + 1] = a[hi]; a[hi] = t;
    return i + 1;
}

static int quicksort(int *a, int lo, int hi) {
    int p;
    if (lo < hi) {
        p = partition(a, lo, hi);
        quicksort(a, lo, p - 1);
        quicksort(a, p + 1, hi);
    }
    return 0;
}

int main(void) {
    int i; int checksum;
    seed = 42;
    for (i = 0; i < 200; i = i + 1) {
        data[i] = next_rand();
    }
    quicksort(data, 0, 199);
    checksum = 0;
    for (i = 1; i < 200; i = i + 1) {
        if (data[i - 1] > data[i]) {
            print_str("UNSORTED\\n");
            return 1;
        }
        checksum = checksum + data[i] * i;
    }
    print_str("qsort ");
    print_int(checksum);
    print_nl();
    return 0;
}
"""

SIEVE = """
char flags[2000];

int main(void) {
    int i; int j; int count;
    count = 0;
    for (i = 2; i < 2000; i = i + 1) {
        flags[i] = 1;
    }
    for (i = 2; i < 2000; i = i + 1) {
        if (flags[i]) {
            count = count + 1;
            for (j = i + i; j < 2000; j = j + i) {
                flags[j] = 0;
            }
        }
    }
    print_str("sieve ");
    print_int(count);
    print_nl();
    return 0;
}
"""

MATMUL = """
int a[144];
int b[144];
int c[144];

static int fill(int *m, int base) {
    int i;
    for (i = 0; i < 144; i = i + 1) {
        m[i] = (i * 7 + base) % 13;
    }
    return 0;
}

int main(void) {
    int i; int j; int k; int sum;
    fill(a, 3);
    fill(b, 5);
    for (i = 0; i < 12; i = i + 1) {
        for (j = 0; j < 12; j = j + 1) {
            sum = 0;
            for (k = 0; k < 12; k = k + 1) {
                sum = sum + a[i * 12 + k] * b[k * 12 + j];
            }
            c[i * 12 + j] = sum;
        }
    }
    sum = 0;
    for (i = 0; i < 144; i = i + 1) {
        sum = sum + c[i];
    }
    print_str("matmul ");
    print_int(sum);
    print_nl();
    return 0;
}
"""

NQUEENS = """
int cols[12];
int solutions;

static int safe(int row, int col) {
    int i;
    for (i = 0; i < row; i = i + 1) {
        if (cols[i] == col) { return 0; }
        if (cols[i] - i == col - row) { return 0; }
        if (cols[i] + i == col + row) { return 0; }
    }
    return 1;
}

static int place(int row, int n) {
    int col;
    if (row == n) {
        solutions = solutions + 1;
        return 0;
    }
    for (col = 0; col < n; col = col + 1) {
        if (safe(row, col)) {
            cols[row] = col;
            place(row + 1, n);
        }
    }
    return 0;
}

int main(void) {
    solutions = 0;
    place(0, 7);
    print_str("nqueens ");
    print_int(solutions);
    print_nl();
    return 0;
}
"""

INTERP = """
int code[64];
int stack[64];
int sp;
int pc_reg;

static int push(int v) { stack[sp] = v; sp = sp + 1; return 0; }
static int pop(void) { sp = sp - 1; return stack[sp]; }

static int step(void) {
    int op; int a; int b;
    op = code[pc_reg];
    pc_reg = pc_reg + 1;
    switch (op) {
    case 0:  return 1;                       /* halt */
    case 1:  push(code[pc_reg]); pc_reg = pc_reg + 1; break;
    case 2:  b = pop(); a = pop(); push(a + b); break;
    case 3:  b = pop(); a = pop(); push(a - b); break;
    case 4:  b = pop(); a = pop(); push(a * b); break;
    case 5:  b = pop(); a = pop(); push(b == 0 ? 0 : a / b); break;
    case 6:  a = pop(); push(a); push(a); break;  /* dup */
    case 7:  print_int(pop()); print_char(' '); break;
    case 8:  a = pop(); if (a) { pc_reg = code[pc_reg]; } else { pc_reg = pc_reg + 1; } break;
    case 9:  pc_reg = code[pc_reg]; break;    /* jmp */
    case 10: b = pop(); a = pop(); push(a < b ? 1 : 0); break;
    case 11: a = pop(); push(-a); break;
    default: print_str("BADOP\\n"); return 1;
    }
    return 0;
}

int main(void) {
    int i;
    /* program: countdown 10..1 printing squares */
    i = 0;
    code[i] = 1; i = i + 1; code[i] = 10; i = i + 1;    /* push 10 */
    /* loop: dup dup * print ; push 1 - ; dup ; jnz loop */
    code[i] = 6; i = i + 1;                              /* 2: dup */
    code[i] = 6; i = i + 1;                              /* dup */
    code[i] = 4; i = i + 1;                              /* mul */
    code[i] = 7; i = i + 1;                              /* print */
    code[i] = 1; i = i + 1; code[i] = 1; i = i + 1;      /* push 1 */
    code[i] = 3; i = i + 1;                              /* sub */
    code[i] = 6; i = i + 1;                              /* dup */
    code[i] = 8; i = i + 1; code[i] = 2; i = i + 1;      /* jnz 2 */
    code[i] = 0;                                         /* halt */
    sp = 0;
    pc_reg = 0;
    while (step() == 0) { }
    print_str("interp done\\n");
    return 0;
}
"""

STRINGS = """
char buffer[64];

static int reverse(char *s) {
    int i; int j; int t;
    i = 0;
    j = strlen(s) - 1;
    while (i < j) {
        t = s[i]; s[i] = s[j]; s[j] = t;
        i = i + 1;
        j = j - 1;
    }
    return 0;
}

static int copy(char *dst, char *src) {
    int i;
    i = 0;
    while (src[i] != 0) {
        dst[i] = src[i];
        i = i + 1;
    }
    dst[i] = 0;
    return i;
}

int main(void) {
    int n; int i; int hash;
    copy(buffer, "executable editing library");
    reverse(buffer);
    print_str(buffer);
    print_nl();
    n = strlen(buffer);
    hash = 5381;
    for (i = 0; i < n; i = i + 1) {
        hash = hash * 33 + buffer[i];
    }
    print_str("hash ");
    print_int(hash & 16777215);
    print_nl();
    if (strcmp(buffer, buffer) != 0) {
        print_str("STRCMP BROKEN\\n");
        return 1;
    }
    return 0;
}
"""

TREE = """
int node_count;

static int *new_node(int value) {
    int *node;
    node = sbrk(12);
    node[0] = value;
    node[1] = 0;
    node[2] = 0;
    node_count = node_count + 1;
    return node;
}

static int *insert(int *root, int value) {
    if (root == 0) {
        return new_node(value);
    }
    if (value < root[0]) {
        root[1] = insert((int *)root[1], value);
    } else {
        root[2] = insert((int *)root[2], value);
    }
    return root;
}

static int total(int *root) {
    if (root == 0) { return 0; }
    return root[0] + total((int *)root[1]) + total((int *)root[2]);
}

int seed;

static int next_rand(void) {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

int main(void) {
    int *root; int i;
    root = 0;
    seed = 7;
    node_count = 0;
    for (i = 0; i < 150; i = i + 1) {
        root = insert(root, next_rand());
    }
    print_str("tree ");
    print_int(node_count);
    print_char(' ');
    print_int(total(root));
    print_nl();
    return 0;
}
"""

FIB = """
static int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}

int main(void) {
    print_str("fib ");
    print_int(fib(17));
    print_nl();
    return 0;
}
"""

CRC = """
int main(void) {
    int crc; int i; int j; int byte;
    crc = -1;
    for (i = 0; i < 256; i = i + 1) {
        byte = (i * 37 + 11) & 255;
        crc = crc ^ byte;
        for (j = 0; j < 8; j = j + 1) {
            if (crc & 1) {
                crc = (crc >> 1) & 2147483647;
                crc = crc ^ -306674912;
            } else {
                crc = (crc >> 1) & 2147483647;
            }
        }
    }
    print_str("crc ");
    print_int(crc);
    print_nl();
    return 0;
}
"""

HANOI = """
int moves;

static int hanoi(int n, int from, int to, int via) {
    if (n == 0) { return 0; }
    hanoi(n - 1, from, via, to);
    moves = moves + 1;
    hanoi(n - 1, via, to, from);
    return 0;
}

int main(void) {
    moves = 0;
    hanoi(12, 1, 3, 2);
    print_str("hanoi ");
    print_int(moves);
    print_nl();
    return 0;
}
"""

BUBBLE = """
int data[100];

int main(void) {
    int i; int j; int t; int swaps;
    for (i = 0; i < 100; i = i + 1) {
        data[i] = (100 - i) * 3 % 71;
    }
    swaps = 0;
    for (i = 0; i < 100; i = i + 1) {
        for (j = 0; j + 1 < 100 - i; j = j + 1) {
            if (data[j] > data[j + 1]) {
                t = data[j]; data[j] = data[j + 1]; data[j + 1] = t;
                swaps = swaps + 1;
            }
        }
    }
    print_str("bubble ");
    print_int(swaps);
    print_char(' ');
    print_int(data[0]);
    print_char(' ');
    print_int(data[99]);
    print_nl();
    return 0;
}
"""

TAILCALLS = """
static int is_odd(int n);

static int is_even(int n) {
    if (n == 0) { return 1; }
    return is_odd(n - 1);
}

static int is_odd(int n) {
    if (n == 0) { return 0; }
    return is_even(n - 1);
}

static int gcd(int a, int b) {
    if (b == 0) { return a; }
    return gcd(b, a % b);
}

static int collatz_len(int n, int acc) {
    if (n == 1) { return acc; }
    if (n & 1) {
        return collatz_len(3 * n + 1, acc + 1);
    }
    return collatz_len(n / 2, acc + 1);
}

int main(void) {
    print_str("tail ");
    print_int(is_even(100));
    print_char(' ');
    print_int(gcd(1071, 462));
    print_char(' ');
    print_int(collatz_len(27, 0));
    print_nl();
    return 0;
}
"""

ACKERMANN = """
static int ack(int m, int n) {
    if (m == 0) { return n + 1; }
    if (n == 0) { return ack(m - 1, 1); }
    return ack(m - 1, ack(m, n - 1));
}

int main(void) {
    print_str("ack ");
    print_int(ack(2, 7));
    print_char(' ');
    print_int(ack(3, 3));
    print_nl();
    return 0;
}
"""



LEXER = """
char source[] = "let x = 42 + foo * (bar - 7); if x >= 9 then print x;";
int counts[8];

static int classify(int c) {
    switch (c) {
    case ' ':  return 0;
    case '(':  return 2;
    case ')':  return 2;
    case '+':  return 3;
    case '-':  return 3;
    case '*':  return 3;
    case '/':  return 3;
    case '=':  return 4;
    case ';':  return 5;
    case '<':  return 4;
    case '>':  return 4;
    default:
        if (c >= '0' && c <= '9') { return 6; }
        if (c >= 'a' && c <= 'z') { return 7; }
        return 1;
    }
}

int main(void) {
    int i; int n; int kind;
    n = strlen(source);
    for (i = 0; i < n; i = i + 1) {
        kind = classify(source[i]);
        counts[kind] = counts[kind] + 1;
    }
    print_str("lexer");
    for (i = 0; i < 8; i = i + 1) {
        print_char(' ');
        print_int(counts[i]);
    }
    print_nl();
    return 0;
}
"""

AUTOMATON = """
int state;
int visits[6];

static int step_machine(int symbol) {
    switch (state) {
    case 0: state = symbol ? 1 : 2; break;
    case 1: state = symbol ? 3 : 0; break;
    case 2: state = symbol ? 0 : 4; break;
    case 3: state = symbol ? 5 : 1; break;
    case 4: state = symbol ? 2 : 5; break;
    case 5: state = symbol ? 4 : 3; break;
    }
    visits[state] = visits[state] + 1;
    return state;
}

int seed;

static int next_bit(void) {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 1;
}

int main(void) {
    int i;
    seed = 99;
    state = 0;
    for (i = 0; i < 3000; i = i + 1) {
        step_machine(next_bit());
    }
    print_str("automaton");
    for (i = 0; i < 6; i = i + 1) {
        print_char(' ');
        print_int(visits[i]);
    }
    print_nl();
    return 0;
}
"""

# Name -> (source, expected output).  Expected output is validated by the
# test suite against the simulator, then used to check edited binaries.
PROGRAMS = {
    "qsort": QSORT,
    "sieve": SIEVE,
    "matmul": MATMUL,
    "nqueens": NQUEENS,
    "interp": INTERP,
    "strings": STRINGS,
    "tree": TREE,
    "fib": FIB,
    "crc": CRC,
    "hanoi": HANOI,
    "bubble": BUBBLE,
    "tailcalls": TAILCALLS,
    "ackermann": ACKERMANN,
    "lexer": LEXER,
    "automaton": AUTOMATON,
}
