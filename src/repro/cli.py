"""Command-line interface: inspect, run, and instrument EELF executables.

    python -m repro.cli build  <workload> <out.eelf> [--sunpro] [--emit-meta]
    python -m repro.cli run    <exe.eelf> [--stdin TEXT] [--max-steps N]
    python -m repro.cli disasm <exe.eelf> [--jobs N]
    python -m repro.cli routines <exe.eelf>
    python -m repro.cli facts  <exe.eelf> [--invalidate NAME]
    python -m repro.cli meta   <exe.eelf> [--emit OUT.eelf]
    python -m repro.cli profile <exe.eelf> <out.eelf> [--mode block|edge]
    python -m repro.cli cachesim <exe.eelf>
    python -m repro.cli stats  <exe.eelf> [--no-run]
    python -m repro.cli verify <workload> [--all] [--tool qpt|sfi|elsie]
    python -m repro.cli fuzz   [--seeds N] [--jobs N] [--corpus-only]
    python -m repro.cli serve  [--socket PATH] [--jobs N] [--queue N]
    python -m repro.cli fleet  [--address ADDR] [--shards N] [--events PATH]
    python -m repro.cli client <op> [--workload NAME] [--image PATH]
    python -m repro.cli trace  <events.jsonl> [--id TRACE]
    python -m repro.cli top    [--socket PATH] [--watch N]
    python -m repro.cli export [--stats-json PATH | --socket PATH]

``run``, ``profile``, ``cachesim``, ``stats``, and ``verify`` accept
telemetry flags: ``--trace`` prints the span tree and counters to
stderr, and ``--stats-json PATH`` writes the full ``repro.obs/1`` JSON
report.  ``serve`` and ``fuzz`` additionally accept ``--events PATH``
to append a durable ``repro.events/1`` JSONL log that ``repro trace``
replays into per-request span trees and anomaly flags.

Analysis-driven commands (``disasm``, ``routines``, ``facts``,
``profile``, ``cachesim``, ``stats``, ``verify``) accept
``--trust-meta``/``--no-trust-meta`` to override ``$REPRO_TRUST_META``
— whether a verified ``.eel.meta`` producer section may seed analysis
instead of full symbol-table refinement (DESIGN.md §5l).
"""

import argparse
import json
import sys

from repro.asm.disassembler import disassemble_section
from repro.binfmt import read_image, write_image
from repro.core import Executable
from repro.sim import run_image


# ----------------------------------------------------------------------
# Telemetry plumbing
# ----------------------------------------------------------------------

def _add_obs_flags(subparser):
    subparser.add_argument("--trace", action="store_true",
                           help="print a span-tree/counter summary to stderr")
    subparser.add_argument("--stats-json", metavar="PATH", default=None,
                           help="write the repro.obs JSON report to PATH")


def _add_jobs_flag(subparser):
    subparser.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="fan cold-cache routine analysis across N "
                                "worker processes (default: 1, serial)")


def _add_trust_flag(subparser):
    group = subparser.add_mutually_exclusive_group()
    group.add_argument("--trust-meta", dest="trust_meta",
                       action="store_true", default=None,
                       help="hydrate analysis from a verified .eel.meta "
                            "section when present "
                            "(default: $REPRO_TRUST_META or on)")
    group.add_argument("--no-trust-meta", dest="trust_meta",
                       action="store_false",
                       help="ignore .eel.meta; always run full refinement")


def _apply_trust_flag(args):
    """Propagate --trust-meta/--no-trust-meta to the environment so the
    whole process (including analysis worker processes) agrees."""
    value = getattr(args, "trust_meta", None)
    if value is not None:
        import os

        os.environ["REPRO_TRUST_META"] = "on" if value else "off"


def _obs_begin(args):
    """Enable telemetry when any obs flag is present; returns True if so."""
    wanted = getattr(args, "trace", False) \
        or getattr(args, "stats_json", None)
    if not wanted:
        return False
    from repro import obs

    obs.reset()
    obs.enable()
    return True


def _obs_end(args, enabled):
    if not enabled:
        return
    from repro import obs
    from repro.obs import report as obs_report

    obs.disable()
    report = obs_report.build_report()
    if getattr(args, "stats_json", None):
        _write_report(report, args.stats_json)
        print("wrote stats to %s" % args.stats_json, file=sys.stderr)
    if getattr(args, "trace", False):
        obs_report.render(report)


def _write_report(report, path):
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _emit_program_output(simulator):
    """Write the simulated program's stdout, newline-terminated and
    flushed, so the stderr trailers never interleave mid-line."""
    output = simulator.output
    sys.stdout.write(output)
    if output and not output.endswith("\n"):
        sys.stdout.write("\n")
    sys.stdout.flush()


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def _cmd_build(args):
    from repro.minic import GCC_LIKE, SUNPRO_LIKE
    from repro.workloads import build_image
    from repro.workloads.builder import program_names

    if args.workload not in program_names():
        print("unknown workload; available: %s"
              % ", ".join(program_names()), file=sys.stderr)
        return 1
    options = SUNPRO_LIKE if args.sunpro else GCC_LIKE
    if args.emit_meta:
        options = options.named(emit_meta=True)
    write_image(build_image(args.workload, options), args.output)
    print("wrote", args.output)
    return 0


def _cmd_run(args):
    from repro.sim.machine import SimulationError

    try:
        simulator = run_image(read_image(args.executable),
                              stdin_text=args.stdin or "",
                              max_steps=args.max_steps,
                              strict_memory=args.strict_memory,
                              engine=args.engine)
    except SimulationError as error:
        print("simulation error: %s" % error, file=sys.stderr)
        return 1
    _emit_program_output(simulator)
    print("[exit %d after %d instructions]"
          % (simulator.exit_code, simulator.instructions_executed),
          file=sys.stderr)
    return simulator.exit_code


def _cmd_disasm(args):
    image = read_image(args.executable)
    annotations = {}
    try:
        exe = Executable(image).read_contents(jobs=args.jobs)
        for routine in exe.all_routines():
            annotations[routine.start] = "; routine %s%s" % (
                routine.name, " (hidden)" if routine.hidden else "")
    except Exception:
        # Disassembly must work even on images analysis chokes on.
        annotations = {}
    for name, section in image.sections.items():
        if section.is_exec:
            print("section %s @ 0x%x" % (name, section.vaddr))
            for line in disassemble_section(image, name,
                                            annotations=annotations):
                print(line)
    return 0


def _cmd_routines(args):
    exe = Executable(read_image(args.executable)) \
        .read_contents(jobs=args.jobs)
    for routine in sorted(exe.all_routines(), key=lambda r: r.start):
        cfg = routine.control_flow_graph()
        flags = []
        if routine.hidden:
            flags.append("hidden")
        if cfg.incomplete:
            flags.append("incomplete")
        print("0x%06x-0x%06x %-20s %3d blocks %3d edges %s" % (
            routine.start, routine.end, routine.name, len(cfg.blocks),
            len(cfg.all_edges()), " ".join(flags)))
    return 0


def _cmd_facts(args):
    """Inspect the incremental fact store for one executable.

    Prints the per-kind fact counts; with ``--invalidate NAME`` it also
    dirties that routine's facts and reports what the incremental
    solver re-derived vs. refreshed — a quick demonstration that an
    edit to one routine does not re-analyze the others.
    """
    from repro.core.facts import rules as fact_rules
    from repro.core.executable import ExecutableError
    from repro.obs import metrics as _metrics

    exe = Executable(read_image(args.executable)) \
        .read_contents(jobs=args.jobs)
    store = exe.fact_store()
    fact_rules.populate(exe, store)
    print("fact store: %d facts over %d routines"
          % (len(store), len(exe.all_routines())))
    for kind in fact_rules.KIND_ORDER:
        print("  %-10s %4d" % (kind, len(store.facts_of_kind(kind))))
    if args.invalidate:
        try:
            exe.invalidate_routine(args.invalidate)
        except ExecutableError as error:
            print("facts: %s" % error, file=sys.stderr)
            return 1
        dirty = store.dirty_facts()
        print("invalidate %s: %d fact(s) dirty" % (args.invalidate,
                                                   len(dirty)))
        for kind, key in sorted(dirty):
            print("  dirty %-10s 0x%06x" % (kind, key))
        rederived, refreshed = fact_rules.solve(exe, store)
        print("solve: %d CFG(s) rebuilt, %d fact(s) refreshed, "
              "%d escalation(s)"
              % (rederived, refreshed,
                 _metrics.counter("facts.escalations").snapshot()))
    return 0


def _cmd_meta(args):
    """Inspect (or emit) the ``.eel.meta`` trusted-structure section.

    Without ``--emit``, decodes and prints the section's claims and
    reports whether the verify-and-trust spot checks accept them
    against this image's bytes.  With ``--emit OUT``, runs full
    analysis (trust disabled) on the input, derives a fresh table from
    what it found, and writes a metadata-carrying copy to OUT.
    """
    from repro.binfmt.meta import MetaError, extract_meta, has_meta
    from repro.core import trust

    image = read_image(args.executable)
    if args.emit:
        from repro.binfmt.meta import attach_meta

        executable = Executable(image).read_contents(jobs=args.jobs,
                                                     trust_meta=False)
        attach_meta(image, trust.meta_from_executable(executable))
        write_image(image, args.emit)
        print("wrote", args.emit)
        return 0
    if not has_meta(image):
        print("meta: %s has no .eel.meta section" % args.executable,
              file=sys.stderr)
        return 1
    try:
        meta = extract_meta(image)
    except MetaError as error:
        print("meta: malformed section: %s" % error, file=sys.stderr)
        return 1
    print("repro.meta/1: %d routine(s), %d dispatch table(s), "
          "%d delay-slot CTI(s), %d data island(s)"
          % (len(meta.routines), len(meta.tables),
             len(meta.delay_ctis), len(meta.islands)))
    print("text binding: 0x%x+%d sha256 %s..."
          % (meta.text_vaddr, meta.text_size, meta.text_sha256.hex()[:16]))
    for routine in meta.routines:
        extra = " hidden" if routine.hidden else ""
        if len(routine.entries) > 1:
            extra += " entries " + ",".join("0x%x" % entry
                                            for entry in routine.entries[1:])
        print("  routine 0x%06x-0x%06x %-20s%s"
              % (routine.start, routine.end, routine.name, extra))
    for table in meta.tables:
        print("  table   0x%06x %4d word(s)%s"
              % (table.addr, table.count,
                 " (in .text)" if table.in_text else ""))
    for start, end in meta.islands:
        print("  island  0x%06x-0x%06x" % (start, end))
    if meta.delay_ctis:
        print("  delay-slot CTIs: %s"
              % " ".join("0x%x" % addr for addr in meta.delay_ctis))
    rejection = trust.verify_meta(Executable(image), meta)
    if rejection is None:
        print("verification: OK — analysis would trust this table")
        return 0
    print("verification: REJECTED (%s): %s" % rejection)
    return 1


def _cmd_profile(args):
    from repro.tools.qpt import QptProfiler

    image = read_image(args.executable)
    tool = QptProfiler(image, mode=args.mode, jobs=args.jobs).run()
    edited = tool.edited_image()
    write_image(edited, args.output)
    simulator = run_image(edited, stdin_text=args.stdin or "")
    _emit_program_output(simulator)
    print("hottest blocks:", file=sys.stderr)
    counts = tool.block_counts(simulator)
    for (routine, start), count in sorted(counts.items(),
                                          key=lambda kv: -kv[1])[:10]:
        print("  %-20s 0x%06x %10d" % (routine, start, count),
              file=sys.stderr)
    return 0


def _cmd_cachesim(args):
    from repro.tools.active_memory import ActiveMemory

    image = read_image(args.executable)
    tool = ActiveMemory(image, cache_size=args.cache_size,
                        jobs=args.jobs).instrument()
    simulator, cache = tool.run(stdin_text=args.stdin or "")
    _emit_program_output(simulator)
    print("%d misses / %d handled accesses (cache %dB, %d sites)"
          % (cache.misses, cache.accesses, args.cache_size, tool.sites),
          file=sys.stderr)
    return 0


def _cmd_stats(args):
    """Full-pipeline telemetry for one executable.

    Runs symbol-table refinement, builds every routine's CFG (which
    triggers indirect-jump analysis), optionally simulates the program,
    and prints the ``repro.obs/1`` JSON report on stdout (or writes it
    with ``--stats-json``).
    """
    from repro import obs
    from repro.obs import report as obs_report

    obs.reset()
    obs.enable()
    try:
        with obs.span("stats", executable=str(args.executable)):
            exe = Executable(read_image(args.executable)) \
                .read_contents(jobs=args.jobs)
            with obs.span("stats.cfg_walk") as sp:
                routines = sorted(exe.all_routines(), key=lambda r: r.start)
                for routine in routines:
                    routine.control_flow_graph()
                sp.set(routines=len(routines))
            if not args.no_run:
                run_image(read_image(args.executable),
                          stdin_text=args.stdin or "")
    finally:
        obs.disable()
    report = obs_report.build_report()
    if args.trace:
        obs_report.render(report)
    if args.stats_json:
        _write_report(report, args.stats_json)
        print("wrote stats to %s" % args.stats_json, file=sys.stderr)
    else:
        print(json.dumps(report, indent=2, sort_keys=True))
    return 0


def _cmd_verify(args):
    """Differential verification (lints + cosim) of instrumented
    workloads; see DESIGN.md section 5e."""
    from repro.verify import _verify_worker, corpus_names

    from repro.workloads.builder import program_names

    available = corpus_names() if args.tool == "qpt" else \
        list(program_names())  # sfi/elsie are SPARC-only
    if args.all:
        names = available
    else:
        if not args.workload:
            print("verify: a workload name (or --all) is required",
                  file=sys.stderr)
            return 1
        if args.workload not in available:
            print("unknown workload for tool %s; available: %s"
                  % (args.tool, ", ".join(available)), file=sys.stderr)
            return 1
        names = [args.workload]

    use_memo = not args.no_memo
    payloads = [(name, args.tool, args.mode, use_memo, args.stdin or "")
                for name in names]
    results = None
    if args.jobs > 1 and len(payloads) > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=args.jobs) as pool:
                results = list(pool.map(_verify_worker, payloads))
        except Exception:
            # Same contract as the analysis cache: --jobs is always
            # safe, pools that die fall back to the serial path.
            from repro.obs import metrics as _metrics

            _metrics.counter("verify.parallel_fallbacks").inc()
            results = None
        if results is not None:
            # Pool children counted in their own processes; fold their
            # deltas in so --stats-json reflects the whole run.
            from repro.obs import metrics as _metrics

            for _name, _ok, _text, deltas in results:
                for key, value in deltas.items():
                    _metrics.counter(key).inc(value)
    if results is None:
        results = [_verify_worker(payload) for payload in payloads]

    failures = 0
    for _name, ok, text, _deltas in results:
        print(text)
        if not ok:
            failures += 1
    print("[verified %d/%d workloads with %s]"
          % (len(results) - failures, len(results), args.tool),
          file=sys.stderr)
    return 0 if failures == 0 else 1


def _cmd_fuzz(args):
    """Generative fuzzing campaign (or corpus replay); DESIGN.md §5g."""
    import os

    from repro.fuzz import campaign as fuzz_campaign
    from repro.fuzz.corpus import CorpusError
    from repro.fuzz.gen import GenConfig

    if args.corpus_only:
        if not os.path.isdir(args.corpus):
            print("fuzz: corpus directory %r does not exist" % args.corpus,
                  file=sys.stderr)
            return 1
        try:
            result = fuzz_campaign.replay_corpus(args.corpus)
        except CorpusError as error:
            print("fuzz: %s" % error, file=sys.stderr)
            return 1
        print(result.render())
        return 0 if result.ok else 1

    if args.seeds <= 0:
        print("fuzz: --seeds must be positive", file=sys.stderr)
        return 1
    if args.time_budget is not None and args.time_budget <= 0:
        print("fuzz: --time-budget must be positive", file=sys.stderr)
        return 1
    if args.jobs <= 0:
        print("fuzz: --jobs must be positive", file=sys.stderr)
        return 1
    config = GenConfig(arch=args.arch)

    def progress(outcome):
        if outcome.status != "clean":
            print("  seed %d: %s %s" % (outcome.seed, outcome.status,
                                        outcome.detail), file=sys.stderr)

    if args.events:
        from repro.obs import events as obs_events

        obs_events.configure(args.events)
    try:
        if args.corrupt_meta:
            result = fuzz_campaign.run_meta_corruption_campaign(
                args.seeds, base_seed=args.base_seed, jobs=args.jobs,
                config=config, progress=progress)
        else:
            result = fuzz_campaign.run_campaign(
                args.seeds, base_seed=args.base_seed, jobs=args.jobs,
                config=config, time_budget=args.time_budget,
                corpus_dir=args.corpus, shrink=not args.no_shrink,
                progress=progress,
                meta_mode="emit" if args.emit_meta else None)
    finally:
        if args.events:
            obs_events.unconfigure()
    print(result.render())
    return 0 if result.ok else 1


def _cmd_serve(args):
    """Run the edit-serving daemon in the foreground (see repro.serve)."""
    from repro.serve import ServeConfig, serve_main

    config = ServeConfig(socket_path=args.socket, jobs=args.jobs,
                         queue_size=args.queue, timeout_s=args.timeout,
                         chaos=True if args.chaos else None,
                         events_path=args.events,
                         shard_id=args.shard_id)
    return serve_main(config, stats_json=args.stats_json, trace=args.trace)


def _cmd_fleet(args):
    """Run the sharded serving fleet: gateway + N shard daemons."""
    from repro.fleet import FleetConfig, fleet_main

    config = FleetConfig(address=args.address, shards=args.shards,
                         run_dir=args.dir, shard_jobs=args.shard_jobs,
                         queue_size=args.queue,
                         forwarders=args.forwarders,
                         starvation_limit=args.starvation_limit,
                         events_path=args.events)
    return fleet_main(config, stats_json=args.stats_json,
                      trace=args.trace)


def _cmd_client(args):
    """One request against a running daemon; prints the JSON result."""
    import base64

    from repro.serve.client import ServeClient, ServeError

    params = {}
    if args.workload:
        params["workload"] = args.workload
    if args.image:
        from repro.binfmt.serialize import image_to_bytes

        params["image"] = base64.b64encode(
            image_to_bytes(read_image(args.image))).decode("ascii")
    if args.op in ("instrument", "verify"):
        params["tool"] = args.tool
        params["mode"] = args.mode
    if args.op == "instrument":
        params["run"] = args.run
        params["return_image"] = False
    if args.op == "hot_restart" and args.shard is not None:
        params["shard"] = args.shard
    if args.stdin:
        params["stdin"] = args.stdin
    client = ServeClient(args.socket, io_timeout=args.timeout,
                         retries=args.retries)
    try:
        with client:
            result = client.request(args.op, **params)
    except ServeError as error:
        print("client error: %s" % error, file=sys.stderr)
        return 1
    except OSError as error:
        print("cannot reach daemon at %s: %s"
              % (client.socket_path, error), file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def _cmd_trace(args):
    """Reconstruct span trees from a ``repro.events/1`` JSONL log."""
    import os

    from repro.obs import events as obs_events

    if not os.path.exists(args.events):
        print("trace: no event log at %r" % args.events, file=sys.stderr)
        return 1
    try:
        events = obs_events.load_events(args.events)
    except ValueError as error:
        print("trace: %s" % error, file=sys.stderr)
        return 1
    traces = obs_events.build_traces(events)
    if args.id:
        matches = [record for trace_id, record in traces.items()
                   if trace_id == args.id or trace_id.startswith(args.id)]
        if not matches:
            print("trace: no trace %r in %s (%d trace(s) logged)"
                  % (args.id, args.events, len(traces)), file=sys.stderr)
            return 1
        for record in matches:
            print(obs_events.render_trace(record))
        return 0
    requests = [record for record in traces.values()
                if record.admit is not None or record.finish is not None]
    print("%d event(s), %d traced request(s) in %s"
          % (len(events), len(requests), args.events))
    for record in requests:
        handler = "%.3fms" % (record.handler_s * 1e3) \
            if record.handler_s is not None else "?"
        wait = "%.3fms" % (record.queue_wait_s * 1e3) \
            if record.queue_wait_s is not None else "?"
        print("  %s  %-12s %-10s wait=%-10s handler=%s"
              % (record.trace_id, record.op, record.status, wait, handler))
    anomalies = obs_events.find_anomalies(events)
    if anomalies:
        print("anomalies:")
        for line in anomalies:
            print("  " + line)
    else:
        print("anomalies: none")
    return 0


def _render_top(snapshot):
    """Human-oriented rendering of one ``top`` snapshot."""
    server = snapshot.get("server", {})
    if server.get("fleet"):
        queues = server.get("queues") or {}
        lines = ["repro-fleet pid %s  uptime %.1fs  shards %s/%s live  "
                 "queue i=%s b=%s%s"
                 % (server.get("pid"), server.get("uptime_s", 0.0),
                    len(server.get("live") or ()), server.get("shards"),
                    queues.get("interactive"), queues.get("bulk"),
                    "  DRAINING" if server.get("draining") else "")]
    else:
        lines = ["repro-serve pid %s  uptime %.1fs  queue %s  workers %s%s%s"
                 % (server.get("pid"), server.get("uptime_s", 0.0),
                    server.get("queue_depth"), server.get("workers_alive"),
                    "  DEGRADED" if server.get("degraded") else "",
                    "  DRAINING" if server.get("draining") else "")]
    shards = snapshot.get("shards") or {}
    if shards:
        lines.append("shards:   %-5s %-6s %-4s %8s %8s %8s %8s %9s %5s"
                     % ("id", "alive", "gen", "pid", "reqs", "ok",
                        "errors", "rerouted", "warm"))
        for shard_id in sorted(shards, key=lambda s: int(s)):
            entry = shards[shard_id]
            lines.append(
                "          %-5s %-6s %-4s %8s %8d %8d %8d %9d %5d"
                % (shard_id, "up" if entry.get("alive") else "DOWN",
                   entry.get("generation"), entry.get("pid"),
                   entry.get("requests", 0), entry.get("ok", 0),
                   entry.get("errors", 0), entry.get("rerouted_away", 0),
                   entry.get("warm_keys", 0)))
    states = server.get("worker_states") or {}
    if states:
        lines.append("workers: " + "  ".join(
            "%s=%s" % (name, state)
            for name, state in sorted(states.items())))
    counters = snapshot.get("counters") or {}
    if counters:
        tag = "since last snapshot" if snapshot.get("incremental") \
            else "total"
        lines.append("counters (%s):" % tag)
        for name, value in sorted(counters.items()):
            lines.append("  %-32s %12d" % (name, value))
    latency = snapshot.get("latency") or {}
    if latency:
        lines.append("latency:  %-12s %6s %10s %10s %10s %10s"
                     % ("op", "count", "p50", "p95", "p99", "max"))
        for op, stats in sorted(latency.items()):
            lines.append(
                "          %-12s %6d %9.2fms %9.2fms %9.2fms %9.2fms"
                % (op, stats.get("count", 0),
                   (stats.get("p50") or 0.0) * 1e3,
                   (stats.get("p95") or 0.0) * 1e3,
                   (stats.get("p99") or 0.0) * 1e3,
                   (stats.get("max") or 0.0) * 1e3))
    queue_wait = snapshot.get("queue_wait")
    if queue_wait:
        lines.append("queue wait: p50 %.2fms  p95 %.2fms  p99 %.2fms"
                     % ((queue_wait.get("p50") or 0.0) * 1e3,
                        (queue_wait.get("p95") or 0.0) * 1e3,
                        (queue_wait.get("p99") or 0.0) * 1e3))
    return "\n".join(lines)


def _cmd_top(args):
    """Live introspection of a running daemon (one-shot or --watch)."""
    import time as _time

    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.socket, retries=1)
    cursor = None
    try:
        with client:
            while True:
                snapshot = client.top(cursor)
                cursor = snapshot.get("cursor")
                print(_render_top(snapshot), flush=True)
                if not args.watch:
                    return 0
                print("", flush=True)
                _time.sleep(args.watch)
    except ServeError as error:
        print("top: %s" % error, file=sys.stderr)
        return 1
    except OSError as error:
        print("top: cannot reach daemon at %s: %s"
              % (client.socket_path, error), file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 0


def _cmd_export(args):
    """Prometheus text-format metrics from a report file or a daemon."""
    from repro.obs.export import prometheus_text

    if args.stats_json:
        try:
            with open(args.stats_json) as handle:
                report = json.load(handle)
        except (OSError, ValueError) as error:
            print("export: cannot read %r: %s" % (args.stats_json, error),
                  file=sys.stderr)
            return 1
        print(prometheus_text(report), end="")
        return 0
    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.socket, retries=1)
    try:
        with client:
            report = client.stats()["report"]
    except ServeError as error:
        print("export: %s" % error, file=sys.stderr)
        return 1
    except OSError as error:
        print("export: cannot reach daemon at %s: %s"
              % (client.socket_path, error), file=sys.stderr)
        return 1
    print(prometheus_text(report), end="")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(prog="repro",
                                     description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build a workload executable")
    build.add_argument("workload")
    build.add_argument("output")
    build.add_argument("--sunpro", action="store_true")
    build.add_argument("--emit-meta", action="store_true",
                       help="attach a .eel.meta trusted-structure section "
                            "(repro.meta/1) describing what analysis found")
    build.set_defaults(func=_cmd_build)

    run = sub.add_parser("run", help="run an executable in the simulator")
    run.add_argument("executable")
    run.add_argument("--stdin", default="")
    run.add_argument("--max-steps", type=int, default=50_000_000,
                     metavar="N",
                     help="abort with a timeout after N instructions "
                          "(default: 50M)")
    run.add_argument("--strict-memory", action="store_true",
                     help="fault on misaligned memory accesses instead "
                          "of byte-wise emulation")
    run.add_argument("--engine", choices=("block", "handwritten", "spawn"),
                     default=None,
                     help="execution engine (default: $REPRO_SIM_ENGINE "
                          "or the block compiler)")
    _add_obs_flags(run)
    run.set_defaults(func=_cmd_run)

    disasm = sub.add_parser("disasm", help="disassemble text sections")
    disasm.add_argument("executable")
    _add_jobs_flag(disasm)
    _add_trust_flag(disasm)
    disasm.set_defaults(func=_cmd_disasm)

    routines = sub.add_parser("routines",
                              help="list routines found by refinement")
    routines.add_argument("executable")
    _add_jobs_flag(routines)
    _add_trust_flag(routines)
    routines.set_defaults(func=_cmd_routines)

    facts = sub.add_parser("facts",
                           help="inspect the incremental fact store "
                                "(optionally invalidate one routine)")
    facts.add_argument("executable")
    facts.add_argument("--invalidate", default=None, metavar="NAME",
                       help="dirty NAME's facts, then run the "
                            "incremental solver and report the work")
    _add_jobs_flag(facts)
    _add_trust_flag(facts)
    facts.set_defaults(func=_cmd_facts)

    meta = sub.add_parser("meta",
                          help="inspect (or emit) the .eel.meta "
                               "trusted-structure section")
    meta.add_argument("executable")
    meta.add_argument("--emit", default=None, metavar="OUT",
                      help="analyze the input and write a copy carrying "
                           "a freshly derived .eel.meta section to OUT")
    _add_jobs_flag(meta)
    meta.set_defaults(func=_cmd_meta)

    profile = sub.add_parser("profile", help="instrument with qpt2")
    profile.add_argument("executable")
    profile.add_argument("output")
    profile.add_argument("--mode", choices=("block", "edge"),
                         default="edge")
    profile.add_argument("--stdin", default="")
    _add_jobs_flag(profile)
    _add_obs_flags(profile)
    _add_trust_flag(profile)
    profile.set_defaults(func=_cmd_profile)

    cachesim = sub.add_parser("cachesim",
                              help="cache simulation via Active Memory")
    cachesim.add_argument("executable")
    cachesim.add_argument("--cache-size", type=int, default=8192)
    cachesim.add_argument("--stdin", default="")
    _add_jobs_flag(cachesim)
    _add_obs_flags(cachesim)
    _add_trust_flag(cachesim)
    cachesim.set_defaults(func=_cmd_cachesim)

    stats = sub.add_parser("stats",
                           help="edit-pipeline + simulator telemetry report")
    stats.add_argument("executable")
    stats.add_argument("--stdin", default="")
    stats.add_argument("--no-run", action="store_true",
                       help="skip the simulation pass")
    _add_jobs_flag(stats)
    _add_obs_flags(stats)
    _add_trust_flag(stats)
    stats.set_defaults(func=_cmd_stats, obs_managed=True)

    verify = sub.add_parser("verify",
                            help="differential verification of an "
                                 "instrumented workload (lints + cosim)")
    verify.add_argument("workload", nargs="?", default=None)
    verify.add_argument("--all", action="store_true",
                        help="verify the whole workload corpus")
    verify.add_argument("--tool", choices=("qpt", "sfi", "elsie"),
                        default="qpt",
                        help="instrumentation tool to verify (default: qpt)")
    verify.add_argument("--mode", choices=("block", "edge"), default="edge",
                        help="qpt instrumentation mode (default: edge)")
    verify.add_argument("--stdin", default="")
    verify.add_argument("--no-memo", action="store_true",
                        help="ignore memoized verdicts; always re-verify")
    verify.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="verify N workloads in parallel worker "
                             "processes (default: 1, serial)")
    _add_obs_flags(verify)
    _add_trust_flag(verify)
    verify.set_defaults(func=_cmd_verify)

    fuzz = sub.add_parser("fuzz",
                          help="generative fuzzing: synthesize, edit, "
                               "verify, shrink what breaks")
    fuzz.add_argument("--seeds", type=int, default=50, metavar="N",
                      help="number of seeds to classify (default: 50)")
    fuzz.add_argument("--base-seed", type=int, default=0, metavar="N",
                      help="first seed (campaigns are deterministic in "
                           "base seed and count; default: 0)")
    fuzz.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="classify seeds across N worker processes "
                           "(default: 1, serial)")
    fuzz.add_argument("--corpus", default="fuzz-corpus", metavar="DIR",
                      help="reproducer directory (default: fuzz-corpus)")
    fuzz.add_argument("--corpus-only", action="store_true",
                      help="replay stored reproducers instead of "
                           "generating new seeds (regression mode)")
    fuzz.add_argument("--time-budget", type=float, default=None,
                      metavar="S",
                      help="stop scheduling new seeds after S seconds")
    fuzz.add_argument("--arch", choices=("sparc", "mips"), default=None,
                      help="restrict generation to one architecture "
                           "(default: per-seed choice)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="store unshrunk reproducers (faster triage)")
    fuzz.add_argument("--events", default=None, metavar="PATH",
                      help="append per-seed classification events "
                           "(repro.events/1 JSONL) to PATH")
    meta_group = fuzz.add_mutually_exclusive_group()
    meta_group.add_argument("--emit-meta", action="store_true",
                            help="attach ground-truth .eel.meta tables "
                                 "derived from each plan's manifest and "
                                 "analyze with trust on")
    meta_group.add_argument("--corrupt-meta", action="store_true",
                            help="metadata adversary: attach a table with "
                                 "one seeded lie per seed; every seed must "
                                 "be rejected or caught downstream")
    _add_obs_flags(fuzz)
    fuzz.set_defaults(func=_cmd_fuzz)

    serve = sub.add_parser("serve",
                           help="run the edit-serving daemon (foreground; "
                                "SIGTERM drains gracefully)")
    serve.add_argument("--socket", default=None, metavar="PATH",
                       help="unix socket to listen on "
                            "(default: $REPRO_SERVE_SOCKET or a per-user "
                            "path under the temp dir)")
    serve.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker threads (default: $REPRO_SERVE_JOBS "
                            "or 2)")
    serve.add_argument("--queue", type=int, default=None, metavar="N",
                       help="admission-queue bound; full means "
                            "reject-with-retry-after (default: "
                            "$REPRO_SERVE_QUEUE or 32)")
    serve.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-request timeout in seconds (default: "
                            "$REPRO_SERVE_TIMEOUT or 60)")
    serve.add_argument("--chaos", action="store_true",
                       help="enable deliberate-failure ops (testing)")
    serve.add_argument("--events", default=None, metavar="PATH",
                       help="append request/worker lifecycle events "
                            "(repro.events/1 JSONL) to PATH "
                            "(default: $REPRO_SERVE_EVENTS or off)")
    serve.add_argument("--shard-id", type=int, default=None, metavar="N",
                       help="fleet shard identity: stamped on responses, "
                            "events, and spans (set by the fleet gateway; "
                            "default: standalone)")
    _add_obs_flags(serve)
    serve.set_defaults(func=_cmd_serve, obs_managed=True)

    fleet = sub.add_parser("fleet",
                           help="run the sharded serving fleet: one "
                                "gateway + N shard daemons (foreground)")
    fleet.add_argument("--address", default=None, metavar="ADDR",
                       help="gateway listen address: a unix socket path "
                            "or tcp://host:port (default: "
                            "$REPRO_FLEET_ADDRESS or a per-user path)")
    fleet.add_argument("--shards", type=int, default=None, metavar="N",
                       help="shard daemon processes "
                            "(default: $REPRO_FLEET_SHARDS or 2)")
    fleet.add_argument("--dir", default=None, metavar="DIR",
                       help="run directory for shard sockets and event "
                            "logs (default: $REPRO_FLEET_DIR or a "
                            "per-pid temp dir)")
    fleet.add_argument("--shard-jobs", type=int, default=None, metavar="N",
                       help="worker threads per shard (default: "
                            "$REPRO_FLEET_SHARD_JOBS or 2)")
    fleet.add_argument("--queue", type=int, default=None, metavar="N",
                       help="gateway admission-queue bound (default: "
                            "$REPRO_FLEET_QUEUE or 256)")
    fleet.add_argument("--forwarders", type=int, default=None, metavar="N",
                       help="concurrent forwarding threads (default: "
                            "$REPRO_FLEET_FORWARDERS or 8)")
    fleet.add_argument("--starvation-limit", type=int, default=None,
                       metavar="K",
                       help="dispatch one bulk request after K "
                            "consecutive interactive ones while bulk "
                            "waits (default: $REPRO_FLEET_STARVATION "
                            "or 8)")
    fleet.add_argument("--events", default=None, metavar="PATH",
                       help="gateway event log; shards get derived logs "
                            "under --dir (default: $REPRO_FLEET_EVENTS "
                            "or off)")
    _add_obs_flags(fleet)
    fleet.set_defaults(func=_cmd_fleet, obs_managed=True)

    client = sub.add_parser("client",
                            help="send one request to a running daemon")
    client.add_argument("op", choices=("ping", "run", "routines", "disasm",
                                       "instrument", "verify", "stats",
                                       "top", "shutdown", "handoff",
                                       "hot_restart"))
    client.add_argument("--socket", default=None, metavar="PATH")
    client.add_argument("--workload", default=None)
    client.add_argument("--image", default=None, metavar="PATH",
                        help="send this .eelf file as the request image")
    client.add_argument("--tool", choices=("qpt", "sfi", "elsie",
                                           "active_memory"), default="qpt")
    client.add_argument("--mode", choices=("block", "edge"), default="edge")
    client.add_argument("--run", action="store_true",
                        help="run the edited image after instrumenting")
    client.add_argument("--shard", type=int, default=None, metavar="N",
                        help="hot_restart one fleet shard instead of a "
                             "rolling restart of all of them")
    client.add_argument("--stdin", default="")
    client.add_argument("--timeout", type=float, default=120.0,
                        help="client-side I/O timeout (seconds)")
    client.add_argument("--retries", type=int, default=5,
                        help="max retries on overloaded/timeout responses")
    client.set_defaults(func=_cmd_client)

    trace = sub.add_parser("trace",
                           help="reconstruct request span trees from a "
                                "repro.events JSONL log")
    trace.add_argument("events", metavar="EVENTS.jsonl",
                       help="event log written by serve/fuzz --events")
    trace.add_argument("--id", default=None, metavar="TRACE",
                       help="show one trace in full (id or unique prefix) "
                            "instead of the summary")
    trace.set_defaults(func=_cmd_trace, obs_managed=True)

    top = sub.add_parser("top",
                         help="live introspection of a running daemon "
                              "(counters, worker states, latency)")
    top.add_argument("--socket", default=None, metavar="PATH")
    top.add_argument("--watch", type=float, default=None, metavar="N",
                     help="refresh every N seconds (incremental counter "
                          "deltas) until interrupted")
    top.set_defaults(func=_cmd_top, obs_managed=True)

    export = sub.add_parser("export",
                            help="Prometheus text-format metrics from a "
                                 "stats report or a running daemon")
    export.add_argument("--stats-json", default=None, metavar="PATH",
                        help="read the repro.obs report from PATH instead "
                             "of asking a daemon")
    export.add_argument("--socket", default=None, metavar="PATH")
    export.set_defaults(func=_cmd_export, obs_managed=True)

    args = parser.parse_args(argv)
    _apply_trust_flag(args)
    if getattr(args, "obs_managed", False):
        return args.func(args)
    enabled = _obs_begin(args)
    try:
        return args.func(args)
    finally:
        _obs_end(args, enabled)


if __name__ == "__main__":
    sys.exit(main())
