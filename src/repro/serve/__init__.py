"""repro.serve — the long-lived edit-serving daemon.

The paper frames EEL as a *library* many tools link against (qpt,
EELsie, SFI); the CLI re-imports the toolchain, re-opens the analysis
cache, and re-reads the image on every invocation.  This package turns
the library into a service: ``repro serve`` keeps analyzed executables
and their cached summaries warm in one process and answers
edit/instrument/disasm/run/verify requests over a local socket using a
line-delimited JSON protocol (one request object per line, one
response object per line).

Layers:

* :mod:`repro.serve.config`   — ``ServeConfig``: knobs from CLI flags
  and defensively parsed ``REPRO_SERVE_*`` environment variables;
* :mod:`repro.serve.protocol` — wire format: framing, error codes,
  request/response builders;
* :mod:`repro.serve.ops`      — request handlers (tool dispatch by
  name, warm-analysis coalescing);
* :mod:`repro.serve.daemon`   — ``EditServer``: bounded admission
  queue with backpressure, worker pool with per-request timeouts and
  bounded retry-with-backoff, graceful SIGTERM drain, and degraded
  serial fallback when the pool is unhealthy;
* :mod:`repro.serve.client`   — ``ServeClient`` plus the ``repro
  client`` command.

Failure semantics (the contract the tests pin):

* queue full        -> ``overloaded`` error with ``retry_after``; the
  admission queue is bounded, it never grows without limit;
* request too slow  -> ``timeout`` error; the worker's result, if it
  ever arrives, is dropped;
* transient faults  -> retried inside the daemon with exponential
  backoff, at most ``retries`` times (cache races, worker death);
* worker death      -> the worker is restarted from a bounded restart
  budget; with no live workers left the daemon *degrades* to serial
  in-process execution instead of going dark;
* SIGTERM           -> drain: finish in-flight requests, reject new
  ones with ``draining``, flush ``serve.*`` counters/spans through
  :mod:`repro.obs`, exit 0.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.config import ServeConfig
from repro.serve.daemon import EditServer, serve_main

__all__ = ["EditServer", "ServeClient", "ServeConfig", "ServeError",
           "serve_main"]
