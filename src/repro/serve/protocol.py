"""Wire format: line-delimited JSON over a local stream socket.

One request object per line, one response object per line, UTF-8,
``\\n``-terminated.  Requests carry a client-chosen ``id`` that the
matching response echoes, an ``op`` name, and op-specific parameters;
responses are either::

    {"id": ..., "ok": true,  "result": {...}}
    {"id": ..., "ok": false, "error": {"code": "...", "message": "..."},
     "retry_after": seconds?}

``retry_after`` appears only on errors worth retrying (``overloaded``,
``timeout``, ``draining``): it is the daemon telling the client when
the attempt is likely to succeed.  ``draining`` became retryable with
the fleet: a draining shard is usually seconds away from a warm
replacement answering on the same gateway, so a client that backs off
briefly lands instead of failing.  Lines are capped at
:data:`MAX_LINE` bytes so a corrupt or hostile peer cannot grow a read
buffer without bound.

Responses from a fleet member additionally carry ``shard`` — the shard
slot that actually served the request (stamped by the shard daemon
itself via ``ServeConfig.shard_id`` and re-stamped authoritatively by
the gateway), so clients and logs can attribute every answer to one
process in the fleet.

Requests may carry a ``trace`` object — ``{"trace_id": hex,
"parent_span_id": hex?}`` (the wire form of
:class:`repro.obs.context.TraceContext`) — naming the client-side
trace this request belongs to.  The daemon adopts it for every span
and event the request produces, and mints a fresh ``trace_id`` when
the field is absent, so server-side telemetry is always attributable.
Responses echo the id under ``trace_id`` so a client can line its logs
up with the daemon's event log.
"""

import json

PROTOCOL = "repro.serve/1"
MAX_LINE = 32 << 20  # images travel base64-encoded inside one line

# Error codes (the failure-semantics vocabulary in README "Serving").
E_BAD_REQUEST = "bad_request"    # unparseable or malformed request
E_UNKNOWN_OP = "unknown_op"      # op name not in the registry
E_OVERLOADED = "overloaded"      # admission queue full; retry later
E_DRAINING = "draining"          # daemon shutting down / being replaced
E_TIMEOUT = "timeout"            # per-request deadline expired
E_UNAVAILABLE = "unavailable"    # op needs state the daemon lacks
E_INTERNAL = "internal"          # handler raised; retries exhausted

# Codes the *daemon* attaches retry_after hints to when rejecting.
RETRYABLE = (E_OVERLOADED, E_TIMEOUT)

# Codes a *client* should back off and retry: the two above, plus
# draining — under a fleet, a draining shard is mid-hot-restart and a
# warm replacement is about to take over the same address.
CLIENT_RETRYABLE = RETRYABLE + (E_DRAINING,)


class ProtocolError(Exception):
    """The byte stream violated the framing contract."""


def encode(message):
    """One wire line (bytes, newline-terminated) for *message*."""
    return json.dumps(message, sort_keys=True).encode("utf-8") + b"\n"


def ok_response(request_id, result):
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id, code, message, retry_after=None):
    response = {"id": request_id, "ok": False,
                "error": {"code": code, "message": message}}
    if retry_after is not None:
        response["retry_after"] = retry_after
    return response


class LineReader:
    """Incremental reader turning a socket into parsed JSON messages."""

    def __init__(self, sock, max_line=MAX_LINE):
        self._sock = sock
        self._max_line = max_line
        self._buffer = b""
        self._eof = False

    def next_message(self):
        """The next decoded message, or None at end of stream.

        Raises :class:`ProtocolError` on oversized lines or JSON that
        does not decode to an object.
        """
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = self._buffer[:newline]
                self._buffer = self._buffer[newline + 1:]
                if not line.strip():
                    continue
                try:
                    message = json.loads(line.decode("utf-8"))
                except (ValueError, UnicodeDecodeError) as error:
                    raise ProtocolError("undecodable line: %s" % error)
                if not isinstance(message, dict):
                    raise ProtocolError("message is not an object")
                return message
            if self._eof:
                if self._buffer.strip():
                    raise ProtocolError("stream ended mid-line")
                return None
            if len(self._buffer) > self._max_line:
                raise ProtocolError("line exceeds %d bytes" % self._max_line)
            chunk = self._sock.recv(65536)
            if not chunk:
                self._eof = True
            else:
                self._buffer += chunk
