"""The edit server: admission, workers, drain, and degradation.

Concurrency model — one thread per accepted connection parses requests
and waits for their results; a bounded :class:`queue.Queue` is the
admission queue (its bound *is* the backpressure: a full queue turns
into an ``overloaded`` response with ``retry_after``, never into
unbounded growth); ``jobs`` worker threads execute requests with
bounded retry-with-backoff for transient failures.  A worker killed by
:class:`~repro.serve.ops.WorkerDeath` is replaced from a finite
restart budget; once the budget is spent and no normal worker
survives, a single immortal fallback worker serves the queue serially
— degraded, but never dark.

The daemon process itself stays single-address-space: analysis fan-out
pools are suppressed (forking from a threaded parent can deadlock the
children) and the cache's in-memory warm layer is enabled, so all
requests share one warm analysis state under one lock discipline.
"""

import errno
import os
import queue
import socket
import sys
import threading
import time
from collections import OrderedDict
from time import perf_counter

from repro.obs import context as _context
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.serve import ops, protocol
from repro.serve.config import ServeConfig

_C_REQUESTS = _metrics.counter("serve.requests")
_C_OK = _metrics.counter("serve.responses.ok")
_C_ERRORS = _metrics.counter("serve.responses.error")
_C_QUEUE_FULL = _metrics.counter("serve.rejected.queue_full")
_C_DRAINING = _metrics.counter("serve.rejected.draining")
_C_TIMEOUTS = _metrics.counter("serve.timeouts")
_C_RETRIES = _metrics.counter("serve.retries")
_C_DEGRADED = _metrics.counter("serve.degraded")
_C_DEATHS = _metrics.counter("serve.worker_deaths")

# Latency accounting is unconditional (histograms are cheap and `repro
# top` must work against a daemon running without --trace).
_H_QUEUE_WAIT = _metrics.histogram("serve.queue_wait")

_STOP = object()  # queue sentinel: worker exits cleanly

_WARM_KEYS_CAP = 64  # recent workloads remembered for hot-restart handoff


def socket_in_use(path):
    """True when a live daemon still answers connections at *path*.

    Distinguishes a *stale* socket file (the previous daemon was
    killed; connecting is refused) from a *live* one (another daemon is
    serving it right now).  Unlinking a live daemon's socket would
    silently steal its rendezvous point — two daemons would both
    believe they own the path while only the thief receives
    connections.
    """
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(0.5)
    try:
        probe.connect(path)
    except OSError:
        return False  # refused / gone / not a socket: safe to clobber
    finally:
        try:
            probe.close()
        except OSError:
            pass
    return True


class _Job:
    """One admitted request travelling from connection to worker."""

    __slots__ = ("id", "op", "params", "attempts", "done", "response",
                 "abandoned", "context", "admitted")

    def __init__(self, request_id, op, params, context=None):
        self.id = request_id
        self.op = op
        self.params = params
        self.attempts = 0
        self.done = threading.Event()
        self.response = None
        self.abandoned = False  # requester gave up (timeout); drop result
        self.context = context  # TraceContext the request travels under
        self.admitted = perf_counter()

    def finish(self, response):
        self.response = response
        self.done.set()


class EditServer:
    """Long-lived server over a Unix stream socket.

    Lifecycle: ``start()`` binds and spawns threads; ``request_drain()``
    (SIGTERM, the ``shutdown`` op, or a test) begins graceful shutdown;
    ``wait_drained()`` blocks until in-flight work finished and every
    worker exited.
    """

    def __init__(self, config=None):
        self.config = config or ServeConfig()
        self.started_at = None
        self._listener = None
        self._queue = queue.Queue(maxsize=self.config.queue_size)
        self._lock = threading.Lock()
        self._threads = []            # acceptor + drainer (joinable)
        self._workers = {}            # thread -> True while alive
        self._restarts_used = 0
        self._fallback_started = False
        self._in_flight = 0
        self._inflight_zero = threading.Condition(self._lock)
        self._coalesce_lock = threading.Lock()
        self._coalescing = {}         # key -> Event of the leading request
        self._chaos_lock = threading.Lock()
        self._chaos_counts = {}
        self._drain_requested = threading.Event()
        self.drained = threading.Event()
        self._worker_states = {}      # thread name -> "idle" | op name
        self._top_lock = threading.Lock()
        self._top_cursor = 0
        self._top_snapshots = {}      # cursor -> counter snapshot
        self._warm_lock = threading.Lock()
        self._warm_keys = OrderedDict()  # workload name -> True (LRU)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        """Bind the socket, warm the caches, spawn the thread pool."""
        from repro.cache import enable_memory_layer
        from repro.cache.parallel import suppress_pools

        enable_memory_layer(self.config.warm_cap)
        suppress_pools()
        path = self.config.socket_path
        if os.path.exists(path):
            # Probe before unlink: a *stale* socket (previous daemon
            # was killed) is clobbered; a *live* one is refused, so two
            # daemons can never silently steal each other's path.
            if socket_in_use(path):
                raise OSError(errno.EADDRINUSE,
                              "socket %s is served by a live daemon; "
                              "refusing to steal it" % path)
            os.unlink(path)
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(path)
        # Backlog sized for a whole client fleet connecting at once;
        # the kernel clamps to net.core.somaxconn.
        self._listener.listen(min(socket.SOMAXCONN, 512))
        self._listener.settimeout(0.2)
        self.started_at = time.monotonic()
        for _ in range(self.config.jobs):
            self._spawn_worker()
        for target, name in ((self._accept_loop, "serve-accept"),
                             (self._drain_loop, "serve-drain")):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def request_drain(self):
        """Begin graceful shutdown (idempotent, signal-safe)."""
        self._drain_requested.set()

    def wait_drained(self, timeout=None):
        return self.drained.wait(timeout)

    def describe(self):
        with self._lock:
            alive = len(self._workers)
            degraded = self._fallback_started
            states = dict(self._worker_states)
        return {
            "pid": os.getpid(),
            "shard": self.config.shard_id,
            "socket": self.config.socket_path,
            "jobs": self.config.jobs,
            "workers_alive": alive,
            "worker_states": states,
            "degraded": degraded,
            "draining": self._drain_requested.is_set(),
            "queue_depth": self._queue.qsize(),
            "uptime_s": time.monotonic() - self.started_at
            if self.started_at is not None else 0.0,
        }

    def top_snapshot(self, cursor=None):
        """Incremental metrics snapshot for the ``top`` op.

        Returns live daemon state plus *counter deltas* since the
        snapshot named by *cursor* (absolute values when the cursor is
        unknown or absent), gauges, and per-op latency percentiles.
        The response carries a fresh cursor the caller hands back on
        its next call; a handful of recent snapshots are kept so one
        slow watcher cannot grow daemon memory.
        """
        counters = {name: instrument.value for name, instrument
                    in _metrics.REGISTRY.counters.items()}
        with self._top_lock:
            baseline = self._top_snapshots.get(cursor, {})
            self._top_cursor += 1
            fresh = self._top_cursor
            self._top_snapshots[fresh] = counters
            while len(self._top_snapshots) > 8:
                self._top_snapshots.pop(min(self._top_snapshots))
        deltas = {name: value - baseline.get(name, 0)
                  for name, value in sorted(counters.items())
                  if value - baseline.get(name, 0)}
        gauges = {name: instrument.value for name, instrument
                  in sorted(_metrics.REGISTRY.gauges.items())
                  if instrument.value is not None}
        latency = {}
        for name, instrument in sorted(_metrics.REGISTRY.histograms.items()):
            if name.startswith("serve.latency.") and instrument.count:
                latency[name[len("serve.latency."):]] = instrument.snapshot()
        queue_wait = _H_QUEUE_WAIT.snapshot() if _H_QUEUE_WAIT.count \
            else None
        return {
            "cursor": fresh,
            "incremental": bool(baseline),
            "server": self.describe(),
            "counters": deltas,
            "gauges": gauges,
            "latency": latency,
            "queue_wait": queue_wait,
        }

    # ------------------------------------------------------------------
    # Shared warm-state helpers (used by ops)
    # ------------------------------------------------------------------

    def coalesce(self, key, fn):
        """Run *fn* once per concurrent burst of *key*.

        The first requester becomes the leader and computes; everyone
        arriving while the leader runs waits, then recomputes against
        the warm state the leader left (memoized verdicts, in-memory
        summaries), which is the cheap path.  Leader failure just
        releases the waiters to try themselves.
        """
        with self._coalesce_lock:
            event = self._coalescing.get(key)
            if event is None:
                self._coalescing[key] = event = threading.Event()
                leader = True
            else:
                leader = False
        if leader:
            _events.emit("coalesce.leader", key=key)
            try:
                return fn()
            finally:
                with self._coalesce_lock:
                    self._coalescing.pop(key, None)
                event.set()
        ops._C_COALESCED.inc()
        _events.emit("coalesce.loser", key=key)
        event.wait(self.config.timeout_s)
        return fn()

    def chaos_attempts(self, key):
        with self._chaos_lock:
            self._chaos_counts[key] = self._chaos_counts.get(key, 0) + 1
            return self._chaos_counts[key]

    def note_warm(self, workload):
        """Remember that *workload* is warm here (handoff snapshot)."""
        with self._warm_lock:
            self._warm_keys.pop(workload, None)
            self._warm_keys[workload] = True
            while len(self._warm_keys) > _WARM_KEYS_CAP:
                self._warm_keys.popitem(last=False)

    def warm_workloads(self):
        """Recently served workloads, oldest first — what a hot-restart
        replacement should pre-analyze before taking this daemon's
        traffic."""
        with self._warm_lock:
            return list(self._warm_keys)

    # ------------------------------------------------------------------
    # Accept / connection handling
    # ------------------------------------------------------------------

    def _accept_loop(self):
        while not self._drain_requested.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed underneath us
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn,), daemon=True)
            thread.start()

    def _serve_connection(self, conn):
        reader = protocol.LineReader(conn)
        try:
            while True:
                try:
                    message = reader.next_message()
                except protocol.ProtocolError as error:
                    conn.sendall(protocol.encode(protocol.error_response(
                        None, protocol.E_BAD_REQUEST, str(error))))
                    return
                if message is None:
                    return
                response = self._handle_request(message)
                if response is not None:
                    conn.sendall(protocol.encode(response))
        except OSError:
            pass  # peer went away; nothing to tell it
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _handle_request(self, message):
        request_id = message.get("id")
        op = message.get("op")
        # Adopt the client's trace context, or mint one: every request
        # is attributable in the event log either way.
        ctx = _context.TraceContext.from_wire(message.get("trace")) \
            or _context.TraceContext()
        _C_REQUESTS.inc()

        def _tagged(response):
            if isinstance(response, dict):
                response.setdefault("trace_id", ctx.trace_id)
                if self.config.shard_id is not None:
                    response.setdefault("shard", self.config.shard_id)
            return response

        if not isinstance(op, str):
            _C_ERRORS.inc()
            return _tagged(protocol.error_response(
                request_id, protocol.E_BAD_REQUEST,
                "request needs a string 'op'"))
        if op == "shutdown":
            self.request_drain()
            _C_OK.inc()
            return _tagged(protocol.ok_response(request_id,
                                                {"draining": True}))
        if self._drain_requested.is_set():
            _C_DRAINING.inc()
            _events.emit("request.error", trace_id=ctx.trace_id,
                         id=request_id, op=op, code=protocol.E_DRAINING)
            # retry_after: under a fleet, a draining shard is being
            # replaced — a brief client backoff usually lands on the
            # warm successor instead of failing.
            return _tagged(protocol.error_response(
                request_id, protocol.E_DRAINING, "daemon is draining",
                retry_after=self.config.retry_after_s))
        params = {key: value for key, value in message.items()
                  if key not in ("id", "op", "trace")}
        job = _Job(request_id, op, params, context=ctx)
        _events.emit("request.admit", trace_id=ctx.trace_id,
                     id=request_id, op=op,
                     queue_depth=self._queue.qsize())
        # Count the job in flight *before* it is visible to workers: a
        # worker finishing it instantly must never see the count at 0.
        with self._lock:
            self._in_flight += 1
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            self._job_finished(job)
            _C_QUEUE_FULL.inc()
            _events.emit("request.error", trace_id=ctx.trace_id,
                         id=request_id, op=op,
                         code=protocol.E_OVERLOADED,
                         queue_depth=self.config.queue_size)
            return _tagged(protocol.error_response(
                request_id, protocol.E_OVERLOADED,
                "admission queue is full (%d waiting)"
                % self.config.queue_size,
                retry_after=self.config.retry_after_s))
        if not job.done.wait(self.config.timeout_s):
            job.abandoned = True
            _C_TIMEOUTS.inc()
            _events.emit("request.error", trace_id=ctx.trace_id,
                         id=request_id, op=op, code=protocol.E_TIMEOUT,
                         timeout_s=self.config.timeout_s)
            return _tagged(protocol.error_response(
                request_id, protocol.E_TIMEOUT,
                "request exceeded %.1fs" % self.config.timeout_s,
                retry_after=self.config.retry_after_s))
        return _tagged(job.response)

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------

    def _spawn_worker(self, fallback=False):
        name = "serve-fallback" if fallback else \
            "serve-worker-%d" % len(self._workers)
        thread = threading.Thread(
            target=self._fallback_loop if fallback else self._worker_loop,
            name=name, daemon=True)
        with self._lock:
            self._workers[thread] = True
        thread.start()
        return thread

    def _set_worker_state(self, state):
        with self._lock:
            self._worker_states[threading.current_thread().name] = state

    def _worker_loop(self):
        self._set_worker_state("idle")
        while True:
            job = self._queue.get()
            if job is _STOP:
                self._remove_worker()
                return
            try:
                self._set_worker_state(job.op)
                self._execute(job)
                self._job_finished(job)
                self._set_worker_state("idle")
            except ops.WorkerDeath as death:
                _C_DEATHS.inc()
                _events.emit("worker.death",
                             worker=threading.current_thread().name,
                             op=job.op, reason=str(death))
                self._reschedule_after_death(job, death)
                self._remove_worker()
                self._replace_worker()
                return

    def _fallback_loop(self):
        """Serial in-process execution once the pool is unhealthy.

        Catches WorkerDeath instead of dying: with the restart budget
        spent, staying alive serially beats going dark.
        """
        self._set_worker_state("idle")
        while True:
            job = self._queue.get()
            if job is _STOP:
                self._remove_worker()
                return
            _C_DEGRADED.inc()
            try:
                self._set_worker_state(job.op)
                self._execute(job)
            except ops.WorkerDeath as death:
                _C_DEATHS.inc()
                _events.emit("worker.death",
                             worker=threading.current_thread().name,
                             op=job.op, degraded=True, reason=str(death))
                job.finish(protocol.error_response(
                    job.id, protocol.E_INTERNAL,
                    "worker death in degraded mode: %s" % death))
                _C_ERRORS.inc()
            self._job_finished(job)
            self._set_worker_state("idle")

    def _execute(self, job):
        """Run one job to a response, retrying transient failures.

        The job's trace context is attached for the duration, so every
        span the handler opens (cache, analysis, verify, simulation)
        joins the request's trace; the whole per-request span tree is
        serialized into the ``request.finish`` event rather than the
        process-global forest, keeping daemon memory flat.
        """
        if job.abandoned:
            job.finish(None)
            return
        started = perf_counter()
        queue_wait = started - job.admitted
        _H_QUEUE_WAIT.observe(queue_wait)
        token = _context.attach(job.context)
        span_attrs = {"op": job.op, "request_id": job.id,
                      "worker": threading.current_thread().name}
        if self.config.shard_id is not None:
            span_attrs["shard"] = self.config.shard_id
        root_span = _trace.TRACER.request_span("serve.request",
                                               **span_attrs)
        root_span.__enter__()
        status, code = "ok", None
        try:
            while True:
                try:
                    result = ops.dispatch(self, job.op, job.params)
                except ops.OpError as error:
                    _C_ERRORS.inc()
                    status, code = "error", error.code
                    job.finish(protocol.error_response(
                        job.id, error.code, error.message))
                    return
                except ops.TransientOpError as error:
                    if job.attempts < self.config.retries:
                        job.attempts += 1
                        _C_RETRIES.inc()
                        time.sleep(self.config.backoff_for(job.attempts))
                        continue
                    _C_ERRORS.inc()
                    status, code = "error", protocol.E_INTERNAL
                    job.finish(protocol.error_response(
                        job.id, protocol.E_INTERNAL,
                        "retries exhausted: %s" % error))
                    return
                _C_OK.inc()
                job.finish(protocol.ok_response(job.id, result))
                return
        finally:
            # Runs on every exit — return paths and WorkerDeath alike —
            # so the span stack and context never leak across jobs.
            root_span.__exit__(None, None, None)
            _context.detach(token)
            handler_s = perf_counter() - started
            _metrics.histogram("serve.latency.%s" % job.op) \
                .observe(handler_s)
            self._emit_request_event(job, status, code, queue_wait,
                                     handler_s, root_span)

    def _emit_request_event(self, job, status, code, queue_wait,
                            handler_s, root_span):
        if not _events.is_configured():
            return
        fields = {
            "trace_id": job.context.trace_id if job.context else None,
            "id": job.id,
            "op": job.op,
            "queue_wait_s": queue_wait,
            "handler_s": handler_s,
            "attempts": job.attempts,
        }
        if job.abandoned:
            fields["abandoned"] = True
        if not job.done.is_set() and status == "ok":
            # WorkerDeath unwound dispatch before a response landed.
            status, code = "error", protocol.E_INTERNAL
        if status == "ok":
            if isinstance(root_span, _trace.Span):
                fields["spans"] = [root_span.to_dict()]
            _events.emit("request.finish", **fields)
        else:
            fields["code"] = code or protocol.E_INTERNAL
            if isinstance(root_span, _trace.Span):
                fields["spans"] = [root_span.to_dict()]
            _events.emit("request.error", **fields)

    def _reschedule_after_death(self, job, death):
        """Worker death mid-job is transient: requeue within budget."""
        if job.attempts < self.config.retries:
            job.attempts += 1
            _C_RETRIES.inc()
            try:
                self._queue.put_nowait(job)
                _events.emit("request.requeued",
                             trace_id=job.context.trace_id
                             if job.context else None,
                             id=job.id, op=job.op, attempts=job.attempts)
                return  # stays in flight; a surviving worker picks it up
            except queue.Full:
                pass
        _C_ERRORS.inc()
        job.finish(protocol.error_response(
            job.id, protocol.E_INTERNAL, "worker died: %s" % death))
        self._job_finished(job)

    def _job_finished(self, job):
        if not job.done.is_set():
            job.finish(None)
        with self._lock:
            self._in_flight -= 1
            if self._in_flight <= 0:
                self._inflight_zero.notify_all()

    def _remove_worker(self):
        with self._lock:
            self._workers.pop(threading.current_thread(), None)

    def _replace_worker(self):
        with self._lock:
            if self._restarts_used < self.config.restarts:
                self._restarts_used += 1
                fallback = False
            elif not self._workers and not self._fallback_started:
                self._fallback_started = True
                fallback = True
            else:
                return  # budget spent; surviving workers carry the load
        if fallback:
            _events.emit("worker.degraded",
                         restarts_used=self._restarts_used)
        else:
            _events.emit("worker.restart",
                         restarts_used=self._restarts_used,
                         restarts_budget=self.config.restarts)
        self._spawn_worker(fallback=fallback)

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------

    def _drain_loop(self):
        self._drain_requested.wait()
        _events.emit("drain.begin", queue_depth=self._queue.qsize(),
                     in_flight=self._in_flight)
        deadline = time.monotonic() + self.config.drain_timeout_s
        # 1. Stop accepting: the accept loop exits on the drain flag;
        #    closing the listener unblocks it immediately.
        try:
            self._listener.close()
        except OSError:
            pass
        # 2. Finish in-flight work (admitted jobs; open connections are
        #    already getting 'draining' rejections for anything new).
        with self._lock:
            while self._in_flight > 0 and time.monotonic() < deadline:
                self._inflight_zero.wait(timeout=0.1)
        # 3. Dismiss workers and join them: no orphans.
        with self._lock:
            workers = list(self._workers)
        for _ in workers:
            try:
                self._queue.put(_STOP, timeout=1.0)
            except queue.Full:
                break
        for thread in workers:
            thread.join(max(0.1, deadline - time.monotonic()))
        try:
            os.unlink(self.config.socket_path)
        except OSError:
            pass
        _events.emit("drain.finish",
                     clean=self._in_flight <= 0,
                     degraded=self._fallback_started,
                     worker_deaths=_C_DEATHS.value)
        self.drained.set()


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------

def serve_main(config, stats_json=None, trace=False):
    """Run a daemon in the foreground until SIGTERM/SIGINT/shutdown.

    On drain the full ``repro.obs`` report — ``serve.*`` counters and,
    when tracing, the span forest — is flushed to *stats_json* and a
    one-line summary goes to stderr.  Returns the process exit code.
    """
    import json
    import signal

    from repro import obs
    from repro.obs import report as obs_report

    if stats_json or trace:
        obs.enable()
    if config.events_path:
        _events.configure(config.events_path)
        if config.shard_id is not None:
            # Every record this process writes names its shard.
            _events.bind(shard=config.shard_id)
    try:
        server = EditServer(config).start()
    except OSError as error:
        print("repro-serve: %s" % error, file=sys.stderr, flush=True)
        if config.events_path:
            _events.unconfigure()
        return 1
    _events.emit("daemon.start", pid=os.getpid(),
                 socket=config.socket_path, jobs=config.jobs,
                 queue_size=config.queue_size,
                 tracing=bool(stats_json or trace))
    shard_tag = "" if config.shard_id is None \
        else ", shard %d" % config.shard_id
    print("repro-serve: listening on %s (%d workers, queue %d, pid %d%s)"
          % (config.socket_path, config.jobs, config.queue_size,
             os.getpid(), shard_tag), file=sys.stderr, flush=True)

    def _request_drain(_signum=None, _frame=None):
        server.request_drain()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, _request_drain)
        except ValueError:
            pass  # not the main thread (embedded use)
    # Chunked waits keep the main thread responsive to signals.
    while not server.wait_drained(timeout=0.2):
        pass
    obs.disable()
    if config.events_path:
        _events.unconfigure()
    report = obs_report.build_report()
    if stats_json:
        with open(stats_json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if trace:
        obs_report.render(report)
    serve = report["serve"]
    print("repro-serve: drained cleanly (%d requests: %d ok, %d errors, "
          "%d rejected, %d timeouts)"
          % (serve["requests"], serve["ok"], serve["errors"],
             serve["rejected"], serve["timeouts"]),
          file=sys.stderr, flush=True)
    return 0
