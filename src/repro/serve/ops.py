"""Request handlers: what the daemon can do, dispatched by op name.

Handlers take ``(server, params)`` and return a JSON-ready result
dict.  Client mistakes raise :class:`OpError` (mapped to an error
response, never retried); infrastructure hiccups raise
:class:`TransientOpError` (retried by the worker with backoff);
:class:`WorkerDeath` kills the executing worker thread — it exists so
the chaos op and the tests can exercise the restart/degradation path,
and so a genuinely fatal handler bug takes out one worker rather than
wedging it.

Requests reference executables either by ``workload`` name (built
through the in-process corpus, warm after first use) or by ``image``
— a base64 serialized image.  Either way the daemon coalesces
concurrent analyses of the same *content*: requests racing on one
content hash produce a single cold analysis, and the losers restore
from the warm summary it leaves behind.
"""

import base64
import time

from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span
from repro.serve.protocol import (
    E_BAD_REQUEST,
    E_INTERNAL,
    E_UNAVAILABLE,
    E_UNKNOWN_OP,
    PROTOCOL,
)

_C_COALESCED = _metrics.counter("serve.coalesced")


class OpError(Exception):
    """Client-visible request failure (not retried)."""

    def __init__(self, code, message):
        super().__init__(message)
        self.code = code
        self.message = message


class TransientOpError(Exception):
    """Infrastructure failure worth retrying with backoff."""


class WorkerDeath(Exception):
    """Kills the executing worker thread (restart/degrade path)."""


# ----------------------------------------------------------------------
# Request inputs
# ----------------------------------------------------------------------

def _workload_image(name):
    from repro.workloads import builder

    if name in builder.mips_program_names():
        return builder.build_mips_image(name)
    if name in builder.program_names():
        return builder.build_image(name)
    raise OpError(E_BAD_REQUEST, "unknown workload %r" % (name,))


def _resolve_image(server, params):
    """The Image a request names, via workload or inline base64.

    Workload names are noted on the server as warm keys: they are the
    handoff snapshot a hot-restart replacement pre-analyzes (inline
    images are not — re-shipping megabytes of base64 through a restart
    would cost more than the cold analysis it saves).
    """
    name = params.get("workload")
    if name is not None:
        image = _workload_image(name)
        server.note_warm(name)
        return image
    blob = params.get("image")
    if blob is not None:
        from repro.binfmt.serialize import FormatError, image_from_bytes

        try:
            return image_from_bytes(base64.b64decode(blob, validate=True))
        except (ValueError, FormatError) as error:
            raise OpError(E_BAD_REQUEST, "bad image payload: %s" % error)
    raise OpError(E_BAD_REQUEST, "request needs 'workload' or 'image'")


def _analyzed(server, image):
    """An analyzed Executable for *image*, coalescing cold analyses.

    The leader for a content hash performs the one real analysis
    (which also populates the cache's in-memory warm layer); every
    concurrent loser waits, then restores from the warm summary into
    its own private Executable — requests never share mutable
    analysis state.
    """
    from repro.cache import image_cache_key
    from repro.core import Executable

    key = image_cache_key(image)
    return server.coalesce("analysis:" + key,
                           lambda: Executable(image).read_contents())


def _encode_image(image):
    from repro.binfmt.serialize import image_to_bytes

    return base64.b64encode(image_to_bytes(image)).decode("ascii")


# ----------------------------------------------------------------------
# Handlers
# ----------------------------------------------------------------------

def _op_ping(server, params):
    import os

    result = {"pong": True, "protocol": PROTOCOL, "pid": os.getpid()}
    if server.config.shard_id is not None:
        result["shard"] = server.config.shard_id
    return result


def _op_routines(server, params):
    exe = _analyzed(server, _resolve_image(server, params))
    rows = []
    for routine in sorted(exe.all_routines(), key=lambda r: r.start):
        cfg = routine.control_flow_graph()
        rows.append({
            "name": routine.name,
            "start": routine.start,
            "end": routine.end,
            "hidden": routine.hidden,
            "blocks": len(cfg.blocks),
            "edges": len(cfg.all_edges()),
        })
    return {"routines": rows}


def _op_disasm(server, params):
    from repro.asm.disassembler import disassemble_section

    image = _resolve_image(server, params)
    annotations = {}
    try:
        exe = _analyzed(server, image)
        for routine in exe.all_routines():
            annotations[routine.start] = "; routine %s%s" % (
                routine.name, " (hidden)" if routine.hidden else "")
    except Exception:
        annotations = {}  # disassembly survives unanalyzable images
    lines = []
    for name, section in image.sections.items():
        if section.is_exec:
            lines.append("section %s @ 0x%x" % (name, section.vaddr))
            lines.extend(disassemble_section(image, name,
                                             annotations=annotations))
    return {"lines": lines}


def _run_simulation(image, params, configure=None):
    from repro.sim.machine import SimulationError, Simulator

    simulator = Simulator(image, stdin_text=params.get("stdin", ""),
                          max_steps=int(params.get("max_steps",
                                                   50_000_000)))
    if configure is not None:
        configure(simulator)
    try:
        simulator.run()
    except SimulationError as error:
        return {"output": simulator.output, "exit_code": None,
                "instructions": simulator.instructions_executed,
                "simulation_error": str(error)}
    return {"output": simulator.output, "exit_code": simulator.exit_code,
            "instructions": simulator.instructions_executed}


def _op_run(server, params):
    return _run_simulation(_resolve_image(server, params), params)


def _op_instrument(server, params):
    from repro.tools import instrument_image, tool_names

    tool = params.get("tool", "qpt")
    if tool not in tool_names():
        raise OpError(E_BAD_REQUEST, "unknown tool %r (have: %s)"
                      % (tool, ", ".join(tool_names())))
    routines = params.get("routines")
    if routines is not None:
        if not isinstance(routines, list) \
                or not all(isinstance(r, str) for r in routines):
            raise OpError(E_BAD_REQUEST,
                          "'routines' must be a list of routine names")
    image = _resolve_image(server, params)
    _analyzed(server, image)  # coalesce the cold analysis across requests
    try:
        session = instrument_image(
            image, tool, mode=params.get("mode", "edge"),
            cache_size=int(params.get("cache_size", 8192)),
            only_routines=routines)
    except ValueError as error:
        raise OpError(E_BAD_REQUEST, str(error))
    result = {"tool": tool}
    if params.get("return_image", True):
        result["edited_image"] = _encode_image(session.edited_image)
    if params.get("run"):
        result["run"] = _run_simulation(session.edited_image, params,
                                        configure=session.configure_edited)
    return result


def _op_verify(server, params):
    from repro.verify import TOOLS, corpus_names, verify_workload

    name = params.get("workload")
    tool = params.get("tool", "qpt")
    mode = params.get("mode", "edge")
    if name not in corpus_names():
        raise OpError(E_BAD_REQUEST, "unknown workload %r" % (name,))
    server.note_warm(name)
    if tool not in TOOLS:
        raise OpError(E_BAD_REQUEST, "unknown tool %r" % (tool,))
    # Identical concurrent verifies coalesce: the leader runs the full
    # lints+cosim pass (memoizing a clean verdict), losers re-check and
    # land on the warm verdict.
    def _verify():
        result = verify_workload(name, tool=tool, mode=mode,
                                 stdin_text=params.get("stdin", ""),
                                 use_memo=params.get("use_memo", True))
        return {"ok": result.ok, "memoized": result.memoized,
                "text": result.render()}

    return server.coalesce("verify:%s:%s:%s" % (name, tool, mode), _verify)


def _op_stats(server, params):
    from repro.obs import report as obs_report

    report = obs_report.build_report()
    sections = params.get("sections")
    if sections is not None:
        if not isinstance(sections, list) \
                or not all(isinstance(s, str) for s in sections):
            raise OpError(E_BAD_REQUEST,
                          "'sections' must be a list of section names")
        unknown = [s for s in sections if s not in report]
        if unknown:
            raise OpError(E_BAD_REQUEST,
                          "unknown report sections: %s (have: %s)"
                          % (", ".join(unknown),
                             ", ".join(sorted(report))))
        report = {key: report[key] for key in ("schema", *sections)}
    return {"report": report, "server": server.describe()}


def _op_top(server, params):
    """Live fleet introspection: incremental snapshot for ``repro top``."""
    cursor = params.get("cursor")
    if cursor is not None and not isinstance(cursor, int):
        raise OpError(E_BAD_REQUEST, "'cursor' must be an integer")
    return server.top_snapshot(cursor)


def _op_handoff(server, params):
    """Warm-state snapshot for a hot-restart replacement.

    Returns the workload names this daemon has analyzed recently (its
    warm key set, newest last).  A replacement shard pre-warms from
    this list via the ``warm`` op before the old process drains, so a
    rolling restart never serves cold.
    """
    return {"workloads": server.warm_workloads(),
            "shard": server.config.shard_id}


def _op_warm(server, params):
    """Pre-analyze a list of workloads (the hot-restart pre-warm path).

    Best-effort by design: a workload that fails to build or analyze
    is skipped rather than failing the whole warm-up — a replacement
    shard with a partial cache still beats a cold one.
    """
    names = params.get("workloads")
    if not isinstance(names, list) \
            or not all(isinstance(n, str) for n in names):
        raise OpError(E_BAD_REQUEST,
                      "'workloads' must be a list of workload names")
    warmed = 0
    skipped = 0
    for name in names:
        try:
            _analyzed(server, _workload_image(name))
            server.note_warm(name)
            warmed += 1
        except Exception:
            skipped += 1
    return {"warmed": warmed, "skipped": skipped}


def _op_chaos(server, params):
    """Deliberate failures for the lifecycle tests (config-gated)."""
    if not server.config.chaos:
        raise OpError(E_UNAVAILABLE, "chaos ops are disabled "
                                     "(set REPRO_SERVE_CHAOS=1)")
    kind = params.get("kind")
    if kind == "sleep":
        seconds = float(params.get("seconds", 0.1))
        time.sleep(seconds)
        return {"slept": seconds}
    if kind == "die":
        raise WorkerDeath("chaos-requested worker death")
    if kind == "flaky":
        fails = int(params.get("fails", 1))
        attempts = server.chaos_attempts(params.get("key", "flaky"))
        if attempts <= fails:
            raise TransientOpError("chaos flake %d/%d" % (attempts, fails))
        return {"attempts": attempts}
    raise OpError(E_BAD_REQUEST, "unknown chaos kind %r" % (kind,))


HANDLERS = {
    "ping": _op_ping,
    "routines": _op_routines,
    "disasm": _op_disasm,
    "run": _op_run,
    "instrument": _op_instrument,
    "verify": _op_verify,
    "stats": _op_stats,
    "top": _op_top,
    "handoff": _op_handoff,
    "warm": _op_warm,
    "chaos": _op_chaos,
}


def dispatch(server, op, params):
    """Execute *op*; the worker's single entry point."""
    handler = HANDLERS.get(op)
    if handler is None:
        raise OpError(E_UNKNOWN_OP, "unknown op %r (have: %s)"
                      % (op, ", ".join(sorted(HANDLERS))))
    with _span("serve.op", op=op):
        try:
            return handler(server, params)
        except (OpError, TransientOpError, WorkerDeath):
            raise
        except OSError as error:
            # Cache-directory races and other filesystem flakes are the
            # canonical transient class; a clean retry usually lands.
            raise TransientOpError("transient I/O failure: %s" % error)
        except Exception as error:
            raise OpError(E_INTERNAL, "%s: %s"
                          % (type(error).__name__, error))
