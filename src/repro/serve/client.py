"""Client side of the serve protocol: one connection, sync requests.

``ServeClient`` keeps a persistent connection and issues one request
at a time (concurrency comes from multiple clients/connections, which
is how the daemon's admission queue is meant to be exercised).  The
client honors the daemon's backpressure contract: ``overloaded``,
``timeout``, and ``draining`` errors carry ``retry_after`` hints and
are retried with bounded client-side backoff (each delay capped at
``max_retry_after``) up to ``retries`` attempts; everything else
raises :class:`ServeError` immediately.  How hard the client had to
work is surfaced as response metadata: :attr:`ServeClient.last_meta`
records the attempt count, total backoff, and serving shard of the
most recent request, and any request that needed more than one attempt
gets the same record injected into its result dict under ``"_meta"``.

Addresses are Unix socket paths by default; a ``tcp://host:port``
address connects over TCP instead (the fleet gateway can listen on
both).
"""

import errno
import itertools
import socket
import time

from repro.obs import context as _context
from repro.obs import trace as _trace
from repro.serve.config import ServeConfig, default_socket_path
from repro.serve.protocol import (
    CLIENT_RETRYABLE,
    LineReader,
    ProtocolError,
    encode,
)


def parse_address(address):
    """``("tcp", (host, port))`` or ``("unix", path)`` for *address*."""
    if isinstance(address, str) and address.startswith("tcp://"):
        rest = address[len("tcp://"):]
        host, _sep, port = rest.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError("bad TCP address %r (want tcp://host:port)"
                             % address)
        return "tcp", (host, int(port))
    return "unix", address


class ServeError(Exception):
    """A request failed with a daemon-reported error."""

    def __init__(self, code, message, retry_after=None):
        super().__init__("%s: %s" % (code, message))
        self.code = code
        self.message = message
        self.retry_after = retry_after


class ServeClient:
    """Line-protocol client for a running edit daemon."""

    def __init__(self, socket_path=None, connect_timeout=5.0,
                 io_timeout=120.0, retries=5, max_retry_after=2.0):
        self.socket_path = socket_path or default_socket_path()
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self.retries = retries
        self.max_retry_after = max_retry_after
        self._ids = itertools.count(1)
        self._sock = None
        self._reader = None
        # Metadata of the most recent request: attempts, backoff paid,
        # and which fleet shard (if any) served it.
        self.last_meta = None

    # ------------------------------------------------------------------
    def connect(self):
        if self._sock is not None:
            return self
        family, target = parse_address(self.socket_path)
        # A busy daemon's accept backlog overflows transiently — Linux
        # answers EAGAIN (unix) or ECONNREFUSED/ECONNRESET (tcp) rather
        # than blocking, so keep knocking within connect_timeout.
        deadline = time.monotonic() + self.connect_timeout
        pause = 0.01
        while True:
            sock = socket.socket(
                socket.AF_INET if family == "tcp" else socket.AF_UNIX,
                socket.SOCK_STREAM)
            sock.settimeout(self.connect_timeout)
            try:
                sock.connect(target)
            except OSError as error:
                sock.close()
                transient = error.errno in (errno.EAGAIN,
                                            errno.ECONNREFUSED,
                                            errno.ECONNRESET)
                if not transient or time.monotonic() >= deadline:
                    raise
                time.sleep(pause)
                pause = min(pause * 2, 0.25)
                continue
            break
        sock.settimeout(self.io_timeout)
        self._sock = sock
        self._reader = LineReader(sock)
        return self

    def close(self):
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._reader = None

    def __enter__(self):
        return self.connect()

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # ------------------------------------------------------------------
    def request(self, op, **params):
        """Result dict of *op*; retries backpressure, raises ServeError.

        Every request travels under a trace context: the caller's
        attached context when one exists (so daemon-side spans hang
        under the caller's trace), a freshly minted one otherwise.
        Retries reuse the same trace id — the event log then shows the
        whole backoff story under one request.
        """
        parent = _context.current()
        ctx = _context.TraceContext(parent.trace_id if parent else None,
                                    parent.span_id if parent else None)
        with _context.attached(ctx), \
                _trace.TRACER.span("serve.client.request", op=op) as sp:
            if isinstance(sp, _trace.Span) and sp.span_id:
                wire = ctx.child(sp.span_id)
            else:
                wire = ctx
            params = dict(params)
            params["trace"] = wire.to_wire()
            attempt = 0
            backoff_total = 0.0
            while True:
                response = self._roundtrip(op, params)
                if response.get("ok"):
                    meta = {"attempts": attempt + 1,
                            "backoff_s": backoff_total}
                    if response.get("shard") is not None:
                        meta["shard"] = response["shard"]
                    self.last_meta = meta
                    result = response.get("result")
                    # Surface how hard the client had to work, but only
                    # when it *did* retry: first-attempt results stay
                    # byte-identical to what the daemon sent.
                    if attempt and isinstance(result, dict):
                        result["_meta"] = meta
                    return result
                error = response.get("error") or {}
                code = error.get("code", "internal")
                retry_after = response.get("retry_after")
                if code in CLIENT_RETRYABLE and attempt < self.retries:
                    attempt += 1
                    delay = min(retry_after
                                if retry_after is not None else 0.1,
                                self.max_retry_after)
                    backoff_total += delay
                    time.sleep(delay)
                    continue
                self.last_meta = {"attempts": attempt + 1,
                                  "backoff_s": backoff_total}
                raise ServeError(code,
                                 error.get("message", "request failed"),
                                 retry_after)

    def roundtrip(self, op, **params):
        """One raw request/response exchange: no retries, no result
        unwrapping.  The fleet gateway relays shard responses (ok and
        error alike) back to its own clients, so it needs the whole
        response object rather than :meth:`request`'s unwrapped
        result.  Raises :class:`ServeError` only for transport-level
        failures (closed connection, id mismatch)."""
        return self._roundtrip(op, params)

    def _roundtrip(self, op, params):
        self.connect()
        request_id = next(self._ids)
        message = {"id": request_id, "op": op}
        message.update(params)
        self._sock.sendall(encode(message))
        response = self._reader.next_message()
        if response is None:
            raise ServeError("connection_closed",
                             "daemon closed the connection mid-request")
        # Responses must echo our id exactly.  An id of None is the
        # daemon reporting a framing-level failure (it could not even
        # parse an id); anything else is a correlation bug.  Either way
        # matching it to this request would hand the caller a response
        # that is not theirs, so surface the mismatch instead.
        got = response.get("id")
        if got != request_id:
            error = response.get("error") or {}
            detail = error.get("message", "")
            raise ServeError(
                "protocol_error",
                "response id %r does not match request id %r%s"
                % (got, request_id,
                   (": " + detail) if detail else ""))
        return response

    # ------------------------------------------------------------------
    # Convenience wrappers (the ops the CLI and tests speak)
    # ------------------------------------------------------------------

    def ping(self):
        return self.request("ping")

    def run_workload(self, workload, stdin="", **params):
        return self.request("run", workload=workload, stdin=stdin, **params)

    def stats(self, sections=None):
        if sections is not None:
            return self.request("stats", sections=list(sections))
        return self.request("stats")

    def top(self, cursor=None):
        """One live-introspection snapshot; pass back the returned
        ``cursor`` to get counter deltas instead of absolutes."""
        if cursor is not None:
            return self.request("top", cursor=cursor)
        return self.request("top")

    def shutdown(self):
        return self.request("shutdown")


def daemon_running(socket_path=None, timeout=1.0):
    """True when a daemon answers a ping at *socket_path*."""
    client = ServeClient(socket_path, connect_timeout=timeout,
                         io_timeout=timeout, retries=0)
    try:
        with client:
            return bool(client.ping().get("pong"))
    except (OSError, ServeError, ProtocolError):
        return False


def wait_for_daemon(socket_path=None, timeout=20.0, interval=0.05):
    """Poll until a daemon answers; True on success within *timeout*."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if daemon_running(socket_path, timeout=1.0):
            return True
        time.sleep(interval)
    return False


__all__ = ["ServeClient", "ServeError", "ServeConfig", "daemon_running",
           "parse_address", "wait_for_daemon"]
