"""Client side of the serve protocol: one connection, sync requests.

``ServeClient`` keeps a persistent connection and issues one request
at a time (concurrency comes from multiple clients/connections, which
is how the daemon's admission queue is meant to be exercised).  The
client honors the daemon's backpressure contract: ``overloaded`` and
``timeout`` errors carry ``retry_after`` and are retried with that
delay up to a bounded attempt count; everything else raises
:class:`ServeError` immediately.
"""

import itertools
import socket
import time

from repro.obs import context as _context
from repro.obs import trace as _trace
from repro.serve.config import ServeConfig, default_socket_path
from repro.serve.protocol import (
    RETRYABLE,
    LineReader,
    ProtocolError,
    encode,
)


class ServeError(Exception):
    """A request failed with a daemon-reported error."""

    def __init__(self, code, message, retry_after=None):
        super().__init__("%s: %s" % (code, message))
        self.code = code
        self.message = message
        self.retry_after = retry_after


class ServeClient:
    """Line-protocol client for a running edit daemon."""

    def __init__(self, socket_path=None, connect_timeout=5.0,
                 io_timeout=120.0, retries=5, max_retry_after=2.0):
        self.socket_path = socket_path or default_socket_path()
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self.retries = retries
        self.max_retry_after = max_retry_after
        self._ids = itertools.count(1)
        self._sock = None
        self._reader = None

    # ------------------------------------------------------------------
    def connect(self):
        if self._sock is not None:
            return self
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.connect_timeout)
        sock.connect(self.socket_path)
        sock.settimeout(self.io_timeout)
        self._sock = sock
        self._reader = LineReader(sock)
        return self

    def close(self):
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._reader = None

    def __enter__(self):
        return self.connect()

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # ------------------------------------------------------------------
    def request(self, op, **params):
        """Result dict of *op*; retries backpressure, raises ServeError.

        Every request travels under a trace context: the caller's
        attached context when one exists (so daemon-side spans hang
        under the caller's trace), a freshly minted one otherwise.
        Retries reuse the same trace id — the event log then shows the
        whole backoff story under one request.
        """
        parent = _context.current()
        ctx = _context.TraceContext(parent.trace_id if parent else None,
                                    parent.span_id if parent else None)
        with _context.attached(ctx), \
                _trace.TRACER.span("serve.client.request", op=op) as sp:
            if isinstance(sp, _trace.Span) and sp.span_id:
                wire = ctx.child(sp.span_id)
            else:
                wire = ctx
            params = dict(params)
            params["trace"] = wire.to_wire()
            attempt = 0
            while True:
                response = self._roundtrip(op, params)
                if response.get("ok"):
                    return response.get("result")
                error = response.get("error") or {}
                code = error.get("code", "internal")
                retry_after = response.get("retry_after")
                if code in RETRYABLE and attempt < self.retries:
                    attempt += 1
                    delay = min(retry_after
                                if retry_after is not None else 0.1,
                                self.max_retry_after)
                    time.sleep(delay)
                    continue
                raise ServeError(code,
                                 error.get("message", "request failed"),
                                 retry_after)

    def _roundtrip(self, op, params):
        self.connect()
        request_id = next(self._ids)
        message = {"id": request_id, "op": op}
        message.update(params)
        self._sock.sendall(encode(message))
        response = self._reader.next_message()
        if response is None:
            raise ServeError("connection_closed",
                             "daemon closed the connection mid-request")
        # Responses must echo our id exactly.  An id of None is the
        # daemon reporting a framing-level failure (it could not even
        # parse an id); anything else is a correlation bug.  Either way
        # matching it to this request would hand the caller a response
        # that is not theirs, so surface the mismatch instead.
        got = response.get("id")
        if got != request_id:
            error = response.get("error") or {}
            detail = error.get("message", "")
            raise ServeError(
                "protocol_error",
                "response id %r does not match request id %r%s"
                % (got, request_id,
                   (": " + detail) if detail else ""))
        return response

    # ------------------------------------------------------------------
    # Convenience wrappers (the ops the CLI and tests speak)
    # ------------------------------------------------------------------

    def ping(self):
        return self.request("ping")

    def run_workload(self, workload, stdin="", **params):
        return self.request("run", workload=workload, stdin=stdin, **params)

    def stats(self, sections=None):
        if sections is not None:
            return self.request("stats", sections=list(sections))
        return self.request("stats")

    def top(self, cursor=None):
        """One live-introspection snapshot; pass back the returned
        ``cursor`` to get counter deltas instead of absolutes."""
        if cursor is not None:
            return self.request("top", cursor=cursor)
        return self.request("top")

    def shutdown(self):
        return self.request("shutdown")


def daemon_running(socket_path=None, timeout=1.0):
    """True when a daemon answers a ping at *socket_path*."""
    client = ServeClient(socket_path, connect_timeout=timeout,
                         io_timeout=timeout, retries=0)
    try:
        with client:
            return bool(client.ping().get("pong"))
    except (OSError, ServeError, ProtocolError):
        return False


def wait_for_daemon(socket_path=None, timeout=20.0, interval=0.05):
    """Poll until a daemon answers; True on success within *timeout*."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if daemon_running(socket_path, timeout=1.0):
            return True
        time.sleep(interval)
    return False


__all__ = ["ServeClient", "ServeError", "ServeConfig", "daemon_running",
           "wait_for_daemon"]
