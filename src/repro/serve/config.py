"""Daemon configuration: CLI flags over ``REPRO_SERVE_*`` env vars.

Every environment knob goes through :mod:`repro.env`, so a malformed
value (``REPRO_SERVE_QUEUE=1e3``, an empty string) can never crash the
daemon or a client — it warns once and uses the default, the same
contract ``REPRO_CACHE_MAX`` follows.
"""

import os
import tempfile

from repro.env import env_float, env_int


def default_socket_path():
    """Per-user default rendezvous point for daemon and clients."""
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), "repro-serve-%d.sock" % uid)


class ServeConfig:
    """Validated daemon/client settings.

    Attributes mirror the constructor arguments; anything left None
    falls back to its ``REPRO_SERVE_*`` variable, then to the default.
    """

    def __init__(self, socket_path=None, jobs=None, queue_size=None,
                 timeout_s=None, retries=None, backoff_s=None,
                 retry_after_s=None, restarts=None, warm_cap=None,
                 drain_timeout_s=None, chaos=None, events_path=None,
                 shard_id=None):
        env = os.environ
        self.socket_path = socket_path or env.get("REPRO_SERVE_SOCKET") \
            or default_socket_path()
        # Identity within a repro.fleet: stamped onto responses, events,
        # and the request span so fleet telemetry is per-shard.  None
        # means a standalone daemon.
        self.shard_id = shard_id if shard_id is not None \
            else env_int("REPRO_SERVE_SHARD", None, minimum=0)
        # Durable event log (repro.events/1 JSONL); no log by default.
        self.events_path = events_path \
            if events_path is not None \
            else env.get("REPRO_SERVE_EVENTS") or None
        self.jobs = jobs if jobs is not None \
            else env_int("REPRO_SERVE_JOBS", 2, minimum=1)
        self.queue_size = queue_size if queue_size is not None \
            else env_int("REPRO_SERVE_QUEUE", 32, minimum=1)
        self.timeout_s = timeout_s if timeout_s is not None \
            else env_float("REPRO_SERVE_TIMEOUT", 60.0, minimum=0.01)
        self.retries = retries if retries is not None \
            else env_int("REPRO_SERVE_RETRIES", 2, minimum=0)
        self.backoff_s = backoff_s if backoff_s is not None \
            else env_float("REPRO_SERVE_BACKOFF", 0.05, minimum=0.0)
        self.retry_after_s = retry_after_s if retry_after_s is not None \
            else env_float("REPRO_SERVE_RETRY_AFTER", 0.1, minimum=0.0)
        self.restarts = restarts if restarts is not None \
            else env_int("REPRO_SERVE_RESTARTS", 3, minimum=0)
        self.warm_cap = warm_cap if warm_cap is not None \
            else env_int("REPRO_SERVE_WARM", 64, minimum=1)
        self.drain_timeout_s = drain_timeout_s \
            if drain_timeout_s is not None \
            else env_float("REPRO_SERVE_DRAIN_TIMEOUT", 30.0, minimum=0.1)
        # Chaos ops (deliberate sleep/death/flakiness) exist so the
        # lifecycle tests can exercise timeout, retry, and degradation
        # paths deterministically; off unless explicitly enabled.
        self.chaos = chaos if chaos is not None \
            else env.get("REPRO_SERVE_CHAOS", "") in ("1", "on", "yes")

    def backoff_for(self, attempt):
        """Exponential backoff delay before retry *attempt* (1-based)."""
        return self.backoff_s * (2 ** max(0, attempt - 1))
