"""Structured shrinking: minimize a failing plan, not its bytes.

Byte- or instruction-level deltas on an executable almost always
produce garbage that fails for a *new* reason.  Shrinking the
generator's plan keeps every candidate well-formed by construction, so
the only question the probe answers is "does this smaller program still
fail the same way?".

Passes, in deterministic order (restarted after every accepted delta,
so the result is a fixpoint and shrinking a minimal plan returns it
unchanged):

1. drop a whole routine (never ``main``), remapping call/tail indices;
2. drop one item from a routine body (or from a loop's nested body);
3. simplify one item in place — shrink a switch's case count, drop a
   loop's nested body, lower its bound, unfill/unannul delay slots,
   drop the branch-in-delay-slot twist, shrink straight runs;
4. simplify a routine — unhide it, drop its tail call, extra entry, or
   uninitialized-register set.

After every delta the plan is re-normalized to the generator's
invariants (dangling calls removed, hidden routines without a call
reference unhidden, ambiguous tail-into-hidden-chain dropped) so a
shrunk plan is always one the generator could have produced.
"""

import copy

from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span

_C_PROBES = _metrics.counter("fuzz.shrink.probes")
_C_ACCEPTED = _metrics.counter("fuzz.shrink.accepted")
_C_RUNS = _metrics.counter("fuzz.shrink.runs")

_DEFAULT_MAX_PROBES = 400


def shrink_plan(plan, preserves, max_probes=_DEFAULT_MAX_PROBES):
    """Smallest normalized variant of *plan* for which *preserves* holds.

    *preserves* is a callable taking a candidate plan and returning
    True when the candidate still exhibits the original failure class.
    If *plan* itself does not satisfy *preserves* (flaky failure), it
    is returned unchanged.
    """
    _C_RUNS.inc()
    with _span("fuzz.shrink"):
        current = _normalize(copy.deepcopy(plan))
        budget = [max_probes]
        if not _probe(preserves, current, budget):
            return plan
        improved = True
        while improved and budget[0] > 0:
            improved = False
            for candidate in _candidates(current):
                if budget[0] <= 0:
                    break
                if _probe(preserves, candidate, budget):
                    _C_ACCEPTED.inc()
                    current = candidate
                    improved = True
                    break
        return current


def _probe(preserves, candidate, budget):
    budget[0] -= 1
    _C_PROBES.inc()
    return preserves(candidate)


# ----------------------------------------------------------------------
# Candidate generation (deterministic order, smallest-first)
# ----------------------------------------------------------------------


def _candidates(plan):
    for index in range(len(plan["routines"]) - 1, 0, -1):
        yield _normalize(_drop_routine(plan, index))
    for rindex, routine in enumerate(plan["routines"]):
        for iindex in range(len(routine["items"]) - 1, -1, -1):
            yield _normalize(_drop_item(plan, rindex, iindex))
    for rindex, routine in enumerate(plan["routines"]):
        for iindex, item in enumerate(routine["items"]):
            for body_index in range(len(item.get("body", ())) - 1, -1, -1):
                yield _normalize(
                    _drop_body_item(plan, rindex, iindex, body_index))
    for rindex, routine in enumerate(plan["routines"]):
        for iindex, item in enumerate(routine["items"]):
            for simplified in _simplify_item(item):
                candidate = copy.deepcopy(plan)
                candidate["routines"][rindex]["items"][iindex] = simplified
                yield _normalize(candidate)
    for rindex, routine in enumerate(plan["routines"]):
        for simplified in _simplify_routine(routine):
            candidate = copy.deepcopy(plan)
            candidate["routines"][rindex] = simplified
            yield _normalize(candidate)


def _drop_routine(plan, index):
    candidate = copy.deepcopy(plan)
    del candidate["routines"][index]
    for routine in candidate["routines"]:
        if routine["tail"] is not None:
            if routine["tail"] == index:
                routine["tail"] = None
            elif routine["tail"] > index:
                routine["tail"] -= 1
        kept = []
        for item in routine["items"]:
            if item["p"] == "call":
                if item["callee"] == index:
                    continue
                if item["callee"] > index:
                    item["callee"] -= 1
            kept.append(item)
        routine["items"] = kept
    return candidate


def _drop_item(plan, rindex, iindex):
    candidate = copy.deepcopy(plan)
    del candidate["routines"][rindex]["items"][iindex]
    return candidate


def _drop_body_item(plan, rindex, iindex, body_index):
    candidate = copy.deepcopy(plan)
    del candidate["routines"][rindex]["items"][iindex]["body"][body_index]
    return candidate


def _simplify_item(item):
    """Smaller same-kind variants of *item*, most aggressive first."""
    out = []

    def variant(**changes):
        if all(item.get(key) == value for key, value in changes.items()):
            return
        smaller = copy.deepcopy(item)
        smaller.update(changes)
        out.append(smaller)

    kind = item["p"]
    if kind == "switch":
        if item["cases"] > 3:
            variant(cases=item["cases"] - 1,
                    mask=_pow2_mask_below(item["cases"] - 1))
        variant(mask=_pow2_mask_below(item["cases"]))
        variant(in_text=0)
    elif kind == "loop":
        variant(body=[])
        variant(bound=2)
        variant(annul=0, fill=0)
    elif kind == "diamond":
        variant(cti=0)
        variant(annul=0, fill=0)
    elif kind == "irr":
        variant(bound=2)
    elif kind == "island":
        variant(words=1)
    if "n" in item and item["n"] > 1:
        variant(n=1)
    return out


def _simplify_routine(routine):
    out = []

    def variant(**changes):
        if all(routine.get(key) == value for key, value in changes.items()):
            return
        smaller = copy.deepcopy(routine)
        smaller.update(changes)
        out.append(smaller)

    variant(hidden=False)
    variant(tail=None)
    variant(extra_entry=None)
    variant(uninit=[])
    return out


def _pow2_mask_below(cases):
    mask = 1
    while (mask << 1) | 1 <= cases - 1:
        mask = (mask << 1) | 1
    return mask


# ----------------------------------------------------------------------
# Invariant restoration
# ----------------------------------------------------------------------


def _normalize(plan):
    """Restore the generator's structural invariants in place."""
    routines = plan["routines"]
    for routine in routines:
        # SPARC frame params sit in a fresh register window: their
        # initializers cannot be skipped (see gen.build_plan).
        if plan["arch"] == "sparc" and routine["kind"] == "frame":
            routine["uninit"] = []
    for rindex, routine in enumerate(routines):
        kept = []
        for item in routine["items"]:
            if item["p"] == "call":
                # Calls only ride in frame routines and only go forward
                # (the termination-by-construction DAG).
                if (routine["kind"] != "frame"
                        or not rindex < item["callee"] < len(routines)):
                    continue
            kept.append(item)
        routine["items"] = kept
        if routine["tail"] is not None:
            target = routine["tail"]
            if not rindex < target < len(routines):
                routine["tail"] = None
            elif (routines[target]["hidden"]
                    and all(routines[k]["hidden"]
                            for k in range(rindex + 1, target))):
                # Ambiguous ground truth (the walk would cover the
                # target); the generator never emits this shape.
                routine["tail"] = None
        if routine["tail"] is not None:
            # Tail callers cannot establish the target's params
            # (escape edges are editable); see gen.build_plan.
            routines[routine["tail"]]["uninit"] = []
        if routine["extra_entry"] is not None:
            items = routine["items"]
            valid = (routine["kind"] == "leaf"
                     and routine["extra_entry"] < len(items)
                     and items[routine["extra_entry"]]["p"]
                     in ("diamond", "switch"))
            if not valid:
                routine["extra_entry"] = None

    call_referenced = set()
    for routine in routines:
        for item in routine["items"]:
            if item["p"] == "call":
                call_referenced.add((item["callee"], item["entry"]))
    for index, routine in enumerate(routines):
        if routine["hidden"] and (index, "main") not in call_referenced:
            routine["hidden"] = False
    for routine in routines:
        for item in routine["items"]:
            if (item["p"] == "call" and item["entry"] == "extra"
                    and routines[item["callee"]]["extra_entry"] is None):
                item["entry"] = "main"
    return plan
