"""Synthesize random-but-well-formed SPARC and MIPS executables.

The generator works in two deterministic stages:

* :func:`build_plan` — expand a seed into a JSON-serializable *plan*:
  a list of routines, each a list of structured items (straight runs,
  diamonds, bounded loops, irreducible regions, dispatch tables, data
  islands, calls, tail calls).  The plan is the unit the shrinker
  mutates: every plan maps to exactly one program.
* :func:`plan_to_program` — lower the plan to assembly for the plan's
  architecture, assemble + link it, and derive a ground-truth
  *manifest* (routine extents, entry points, intra-routine transfers,
  table extents and targets, delay-slot annotations, live-in
  registers) directly from the emission — not from analysis.

Programs terminate by construction: calls and tail calls only target
strictly higher-numbered routines (a DAG), every loop is bounded by a
dedicated counter initialized on every path to its latch, and switch
indices are masked below the table bound.  The adversarial shapes from
paper §3.1/§3.3 — hidden routines, multi-entry routines, annulled and
filled delay slots, branches in delay slots, in-text tables, data
islands — are all expressible and randomly mixed in.
"""

import random

from repro.asm import assemble
from repro.binfmt import link
from repro.binfmt.layout import TEXT_BASE
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span

GEN_VERSION = 1

_C_PLANS = _metrics.counter("fuzz.gen.plans")
_C_IMAGES = _metrics.counter("fuzz.gen.images")

_ARCHES = ("sparc", "mips")
_CONDS = ("eq", "ne", "lt", "ge")


class GenConfig:
    """Tunable probabilities and size bounds for plan generation."""

    _DEFAULTS = {
        "arch": None,  # None -> per-seed choice
        "min_routines": 2,
        "max_routines": 5,
        "max_items": 5,
        "max_ops": 4,
        "max_loop_bound": 6,
        "max_cases": 6,
        "p_hidden": 0.30,
        "p_multi_entry": 0.25,
        "p_tail": 0.25,
        "p_annul": 0.40,
        "p_fill": 0.50,
        "p_cti_in_slot": 0.08,
        "p_island": 0.20,
        "p_table_in_text": 0.50,
        "p_uninit": 0.30,
        "p_wide_mask": 0.30,  # switch mask may exceed bound -> default taken
    }

    def __init__(self, **overrides):
        unknown = set(overrides) - set(self._DEFAULTS)
        if unknown:
            raise ValueError("unknown GenConfig fields: %s"
                             % ", ".join(sorted(unknown)))
        for name, value in self._DEFAULTS.items():
            setattr(self, name, overrides.get(name, value))
        if self.arch is not None and self.arch not in _ARCHES:
            raise ValueError("arch must be one of %s" % (_ARCHES,))

    def to_dict(self):
        return {name: getattr(self, name) for name in self._DEFAULTS}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


DEFAULT_CONFIG = GenConfig()


class GeneratedProgram:
    """A generated executable plus its ground truth."""

    def __init__(self, plan, asm, image, manifest):
        self.plan = plan
        self.asm = asm
        self.image = image
        self.manifest = manifest

    @property
    def seed(self):
        return self.plan["seed"]

    @property
    def arch(self):
        return self.plan["arch"]

    def run(self, max_steps=2_000_000):
        from repro.sim import run_image

        return run_image(self.image, max_steps=max_steps)


# ----------------------------------------------------------------------
# Stage 1: seed -> plan.


def build_plan(seed, config=None):
    """Expand *seed* into a deterministic, JSON-serializable plan."""
    config = config or DEFAULT_CONFIG
    rng = random.Random(seed)
    _C_PLANS.inc()
    arch = config.arch or rng.choice(_ARCHES)
    count = rng.randint(config.min_routines, config.max_routines)
    routines = []
    for index in range(count):
        if index == 0:
            kind = "frame"
        elif index == count - 1:
            kind = "leaf"
        else:
            kind = rng.choice(("frame", "leaf"))
        uninit = sorted(i for i in range(4)
                        if rng.random() < config.p_uninit)
        if arch == "sparc" and kind == "frame":
            # Frame params live in %l registers of a fresh window; a
            # caller cannot establish them, so skipping their
            # initializers would read window leftovers that edits
            # legitimately change.
            uninit = []
        routine = {
            "name": "main" if index == 0 else "r%d" % index,
            "kind": kind,
            "hidden": bool(index > 0 and rng.random() < config.p_hidden),
            "uninit": uninit,
            "tail": None,
            "extra_entry": None,
            "items": [],
        }
        routines.append(routine)

    for index, routine in enumerate(routines):
        budget = rng.randint(2, config.max_items)
        routine["items"] = _build_items(rng, config, arch, budget, depth=0,
                                        is_main=(index == 0),
                                        is_frame=(routine["kind"] == "frame"))
        if index == 0:
            # main always observes its accumulator.
            routine["items"].append({"p": "print"})
        if (index < len(routines) - 1 and rng.random() < config.p_tail):
            # A tail to a hidden routine with only hidden routines in
            # between lands inside the tail's own (symbol-bounded)
            # extent, so the CFG walk legitimately covers the target
            # and the refiner reports an extra entry, not a hidden
            # split.  Keep ground truth unambiguous: only tail to
            # targets outside the walkable extent.
            candidates = [
                j for j in range(index + 1, len(routines))
                if not (routines[j]["hidden"]
                        and all(routines[k]["hidden"]
                                for k in range(index + 1, j)))
            ]
            if candidates:
                routine["tail"] = rng.choice(candidates)

    # A tail target's uninitialized params cannot be established by the
    # tail caller: escape edges are editable, so a snippet could run
    # between the caller's defs and the target's entry and clobber any
    # register outside the exit-live set.
    for routine in routines:
        if routine["tail"] is not None:
            routines[routine["tail"]]["uninit"] = []

    # Multi-entry leaves: expose the join label of a diamond or switch.
    for index, routine in enumerate(routines):
        if index == 0 or routine["kind"] != "leaf":
            continue
        if rng.random() >= config.p_multi_entry:
            continue
        joins = [i for i, item in enumerate(routine["items"])
                 if item["p"] in ("diamond", "switch")]
        if joins:
            routine["extra_entry"] = rng.choice(joins)

    # Every routine (and every extra entry) must be referenced so the
    # refiner can discover it; calls ride in frame routines only.  A
    # tail (direct branch) reference is NOT enough for a hidden
    # routine: a branch from the preceding extent into the hidden code
    # is indistinguishable from intra-routine flow, so the walker
    # legitimately absorbs it — hidden routines need a call reference.
    call_referenced = set()
    for item, _routine in _iter_items(routines):
        if item["p"] == "call":
            call_referenced.add((item["callee"], item["entry"]))
    referenced = set(call_referenced)
    for index, routine in enumerate(routines):
        if routine["tail"] is not None:
            referenced.add((routine["tail"], "main"))
    for index, routine in enumerate(routines):
        if index == 0:
            continue
        seen = call_referenced if routine["hidden"] else referenced
        if (index, "main") not in seen:
            caller = _pick_frame_before(rng, routines, index)
            routines[caller]["items"].insert(
                rng.randint(0, len(routines[caller]["items"])),
                {"p": "call", "callee": index, "entry": "main"})
        if routine["extra_entry"] is not None \
                and (index, "extra") not in call_referenced:
            caller = _pick_frame_before(rng, routines, index)
            routines[caller]["items"].append(
                {"p": "call", "callee": index, "entry": "extra"})

    return {
        "version": GEN_VERSION,
        "seed": seed,
        "arch": arch,
        "config": config.to_dict(),
        "routines": routines,
    }


def _pick_frame_before(rng, routines, index):
    frames = [i for i in range(index) if routines[i]["kind"] == "frame"]
    return rng.choice(frames) if frames else 0


def _iter_items(routines):
    for routine in routines:
        stack = list(routine["items"])
        while stack:
            item = stack.pop()
            yield item, routine
            stack.extend(item.get("body", ()))


def _build_items(rng, config, arch, budget, depth, is_main, is_frame):
    items = []
    for _ in range(budget):
        roll = rng.random()
        if depth > 0:
            # Nested bodies stay simple: straight runs and diamonds.
            kind = "straight" if roll < 0.6 else "diamond"
        elif roll < 0.30:
            kind = "straight"
        elif roll < 0.55:
            kind = "diamond"
        elif roll < 0.72:
            kind = "loop"
        elif roll < 0.85:
            kind = "switch"
        elif roll < 0.93:
            kind = "irr"
        else:
            kind = "island"
        items.append(_build_item(rng, config, arch, kind, depth))
    return items


def _build_item(rng, config, arch, kind, depth):
    base = {
        "p": kind,
        "n": rng.randint(1, config.max_ops),
        "os": rng.randrange(1 << 30),
    }
    if kind == "straight" or kind == "island":
        if kind == "island":
            base["words"] = rng.randint(1, 4)
        return base
    if kind == "diamond":
        base.update({
            "cond": rng.choice(_CONDS),
            "imm": rng.randint(0, 40),
            "annul": int(rng.random() < config.p_annul),
            "fill": int(rng.random() < config.p_fill),
            "cti": int(arch == "sparc"
                       and rng.random() < config.p_cti_in_slot),
        })
        return base
    if kind == "loop":
        base.update({
            "bound": rng.randint(2, config.max_loop_bound),
            "annul": int(arch == "mips" and rng.random() < config.p_annul),
            "fill": int(rng.random() < config.p_fill),
            "body": (_build_items(rng, config, arch, rng.randint(1, 2),
                                  depth + 1, False, False)
                     if depth == 0 and rng.random() < 0.5 else []),
        })
        return base
    if kind == "irr":
        base.update({
            "bound": rng.randint(2, config.max_loop_bound),
            "cond": rng.choice(_CONDS),
            "imm": rng.randint(0, 40),
        })
        return base
    if kind == "switch":
        cases = rng.randint(3, config.max_cases)
        # Narrow power-of-two-minus-one mask below the bound; widening
        # it past the bound makes the default arm dynamically reachable.
        mask = _pow2_mask_below(cases)
        if rng.random() < config.p_wide_mask:
            mask = mask * 2 + 1
        base.update({
            "cases": cases,
            "mask": mask,
            "in_text": int(rng.random() < config.p_table_in_text),
        })
        return base
    raise ValueError("unknown item kind %r" % kind)


def _pow2_mask_below(cases):
    mask = 1
    while (mask << 1) | 1 <= cases - 1:
        mask = (mask << 1) | 1
    return mask


# ----------------------------------------------------------------------
# Stage 2: plan -> assembly + image + manifest.

_SPARC_NAMES = (["%%g%d" % i for i in range(8)]
                + ["%%o%d" % i for i in range(8)]
                + ["%%l%d" % i for i in range(8)]
                + ["%%i%d" % i for i in range(8)])
_MIPS_NAMES = ("$zero $at $v0 $v1 $a0 $a1 $a2 $a3 "
               "$t0 $t1 $t2 $t3 $t4 $t5 $t6 $t7 "
               "$s0 $s1 $s2 $s3 $s4 $s5 $s6 $s7 "
               "$t8 $t9 $k0 $k1 $gp $sp $fp $ra").split()


class _RegMap:
    def __init__(self, p, c, scratch, addr, sw_idx, sw_ent):
        self.p = p  # working registers (accumulators / operands)
        self.c = c  # loop counters
        self.scratch = scratch
        self.addr = addr
        self.sw_idx = sw_idx
        self.sw_ent = sw_ent


_MAPS = {
    ("sparc", "frame"): _RegMap([16, 17, 18, 19], [20, 21, 22], 3, 4, 2, 5),
    ("sparc", "leaf"): _RegMap([8, 9, 10, 11], [12, 13], 3, 4, 2, 5),
    ("mips", "frame"): _RegMap([16, 17, 18, 19], [20, 21, 22], 24, 25, 15, 14),
    ("mips", "leaf"): _RegMap([8, 9, 10, 11], [12, 13], 24, 25, 15, 14),
}


class _Block:
    """Liveness/transfer bookkeeping for one emitted basic block."""

    def __init__(self, label, offset):
        self.label = label
        self.offset = offset
        self.uses = set()
        self.defs = set()
        self.succs = []  # label names, or "EXIT"
        self.closed = False


class _Emitter:
    """Lower a plan to assembly text while recording ground truth."""

    def __init__(self, plan):
        self.plan = plan
        self.arch = plan["arch"]
        self.names = _SPARC_NAMES if self.arch == "sparc" else _MIPS_NAMES
        self.lines = []
        self.offset = 0  # global word index within .text
        self.rodata = []  # (table_label, [target labels])
        self.label_offsets = {}
        self.manifest_routines = []
        # per-routine state
        self.regs = None
        self.blocks = []
        self.block = None
        self.transfers = []
        self.calls = []
        self.tables = []
        self.islands = []
        self.ctis = []
        self.counter_depth = 0
        self.label_seq = 0
        self.routine_index = 0

    # -- low-level emission ------------------------------------------------
    def raw(self, text):
        self.lines.append(text)

    def ins(self, text, reads=(), writes=()):
        self.lines.append("    " + text)
        offset = self.offset
        self.offset += 1
        if self.block is not None and not self.block.closed:
            for reg in reads:
                if reg not in self.block.defs:
                    self.block.uses.add(reg)
            self.block.defs.update(writes)
        return offset

    def word(self, expr):
        self.lines.append("    .word %s" % expr)
        offset = self.offset
        self.offset += 1
        return offset

    def label(self, name, fall_from_prev=True):
        if self.block is not None and not self.block.closed \
                and fall_from_prev:
            self.block.succs.append(name)
        self.raw("%s:" % name)
        self.label_offsets[name] = self.offset
        self.block = _Block(name, self.offset)
        self.blocks.append(self.block)
        return name

    def new_label(self):
        self.label_seq += 1
        return "f%d_%d" % (self.routine_index, self.label_seq)

    def addr_of(self, label):
        return TEXT_BASE + 4 * self.label_offsets[label]

    def name_of(self, reg):
        return self.names[reg]

    def close_block(self, *succs):
        if self.block is not None:
            self.block.succs.extend(succs)
            self.block.closed = True

    def record_cti(self, offset, delayed, annul, filled):
        self.ctis.append({"addr": TEXT_BASE + 4 * offset,
                          "delayed": bool(delayed), "annul": bool(annul),
                          "filled": bool(filled)})

    def record_transfer(self, src_offset, dst_label, kind):
        self.transfers.append({"src": TEXT_BASE + 4 * src_offset,
                               "dst": dst_label, "kind": kind})


def plan_to_program(plan):
    """Lower *plan*: assembly text, linked image, ground-truth manifest."""
    with _span("fuzz.gen", seed=plan["seed"]):
        emitter = _Emitter(plan)
        _emit_program(emitter)
        source = "\n".join(emitter.lines) + "\n"
        image = link([assemble(source, plan["arch"])])
        _C_IMAGES.inc()
        manifest = _finish_manifest(emitter, image)
        hidden = [routine["name"] for routine in plan["routines"]
                  if routine["hidden"]]
        if hidden:
            image.hide_symbols(hidden)
        return GeneratedProgram(plan, source, image, manifest)


def generate(seed, config=None):
    """Seed -> generated program with manifest (fully deterministic)."""
    return plan_to_program(build_plan(seed, config))


def _emit_program(emitter):
    plan = emitter.plan
    arch = plan["arch"]
    emitter.raw("    .text")
    emitter.raw("    .global _start")
    _emit_start(emitter)
    for index, routine in enumerate(plan["routines"]):
        _emit_routine(emitter, index, routine)
    emitter.raw("")
    emitter.raw("    .data")
    emitter.raw("    .align 4")
    emitter.raw("gbuf:")
    emitter.raw("    .space 64")
    if emitter.rodata:
        emitter.raw("")
        emitter.raw("    .rodata")
        emitter.raw("    .align 4")
        for table_label, targets in emitter.rodata:
            emitter.raw("%s:" % table_label)
            for target in targets:
                emitter.raw("    .word %s" % target)


def _emit_start(emitter):
    arch = emitter.plan["arch"]
    emitter.routine_index = -1
    emitter.blocks = []
    emitter.transfers = []
    emitter.calls = []
    emitter.tables = []
    emitter.islands = []
    emitter.ctis = []
    emitter.label("_start", fall_from_prev=False)
    start_offset = emitter.offset
    # Establish main's skipped param initializers (see _emit_call).
    main_regs = _MAPS[(arch, "frame")]
    for position, index in enumerate(emitter.plan["routines"][0]["uninit"]):
        _op_li(emitter, main_regs.p[index], 5 + 7 * position)
    if arch == "sparc":
        offset = emitter.ins("call main")
        emitter.ins("nop")
        emitter.record_cti(offset, True, False, False)
        emitter.ins("mov 1, %g1")
        emitter.ins("ta 0")
    else:
        offset = emitter.ins("jal main")
        emitter.ins("nop")
        emitter.record_cti(offset, True, False, False)
        emitter.ins("move $a0, $v0")
        emitter.ins("li $v0, 1")
        emitter.ins("syscall")
    emitter.calls.append({"src": TEXT_BASE + 4 * offset, "callee": "main"})
    emitter.manifest_routines.append({
        "name": "_start",
        "label": "_start",
        "start_offset": start_offset,
        "hidden": False,
        "leaf": False,
        "extra_entry_label": None,
        "incomplete_ok": False,
        "leader_labels": [],
        "transfers": list(emitter.transfers),
        "calls": list(emitter.calls),
        "tables": [],
        "islands": [],
        "ctis": list(emitter.ctis),
        "live_in": None,
        "blocks": emitter.blocks,
    })


def _emit_routine(emitter, index, routine):
    plan = emitter.plan
    arch = plan["arch"]
    emitter.routine_index = index
    emitter.regs = _MAPS[(arch, routine["kind"])]
    emitter.blocks = []
    emitter.transfers = []
    emitter.calls = []
    emitter.tables = []
    emitter.islands = []
    emitter.ctis = []
    emitter.counter_depth = 0
    emitter.label_seq = 0
    name = routine["name"]
    emitter.raw("")
    if not routine["hidden"] and name == "main":
        emitter.raw("    .global main")
    elif not routine["hidden"]:
        emitter.raw("    .type %s, func" % name)
    emitter.label(name, fall_from_prev=False)
    start_offset = emitter.offset
    _emit_prologue(emitter, routine)
    rng = random.Random(plan["seed"] * 1_000_003 + index)
    for reg_index in range(4):
        if reg_index not in routine["uninit"]:
            _op_li(emitter, emitter.regs.p[reg_index], rng.randint(1, 60))
    # Clobber regs must be defined on every path: ops may write one in
    # a single diamond arm and read it after the join, and on SPARC a
    # fresh window's %l contents are whatever instrumentation last left
    # in that physical window.
    for reg in emitter.regs.c:
        _op_li(emitter, reg, rng.randint(1, 60))
    extra_label = [None]
    for item_index, item in enumerate(routine["items"]):
        expose = (routine["extra_entry"] == item_index)
        label = _emit_item(emitter, routine, item, expose)
        if expose:
            extra_label[0] = label
    if routine["tail"] is not None:
        _emit_tail(emitter, routine, plan["routines"][routine["tail"]])
    else:
        _emit_ret(emitter, routine)
    leader_labels = sorted({t["dst"] for t in emitter.transfers
                            if t["kind"] in ("taken", "uncond")}
                           | {target for table in emitter.tables
                              for target in table["target_labels"]})
    emitter.manifest_routines.append({
        "name": name,
        "label": name,
        "start_offset": start_offset,
        "hidden": routine["hidden"],
        "leaf": routine["kind"] == "leaf",
        "extra_entry_label": extra_label[0],
        "incomplete_ok": _has_cti(routine["items"]),
        "leader_labels": leader_labels,
        "transfers": list(emitter.transfers),
        "calls": list(emitter.calls),
        "tables": list(emitter.tables),
        "islands": list(emitter.islands),
        "ctis": list(emitter.ctis),
        "live_in": _truth_live_in(emitter, routine),
        "blocks": emitter.blocks,
    })


def _emit_prologue(emitter, routine):
    arch = emitter.plan["arch"]
    if routine["kind"] != "frame":
        return
    if arch == "sparc":
        emitter.ins("save %sp, -96, %sp", reads={14}, writes={14})
    else:
        emitter.ins("addiu $sp, $sp, -32", reads={29}, writes={29})
        emitter.ins("sw $ra, 28($sp)", reads={31, 29})
        for slot in range(7):
            emitter.ins("sw $s%d, %d($sp)" % (slot, slot * 4),
                        reads={16 + slot, 29})


def _emit_ret(emitter, routine):
    arch = emitter.plan["arch"]
    regs = emitter.regs
    if arch == "sparc":
        if routine["kind"] == "frame":
            emitter.ins("mov %s, %%i0" % emitter.name_of(regs.p[0]),
                        reads={regs.p[0]}, writes={24})
            offset = emitter.ins("ret", reads={31})
            emitter.ins("restore")
            emitter.record_cti(offset, True, False, True)
        else:
            offset = emitter.ins("retl", reads={15})
            emitter.ins("nop")
            emitter.record_cti(offset, True, False, False)
    else:
        emitter.ins("move $v0, %s" % emitter.name_of(regs.p[0]),
                    reads={regs.p[0]}, writes={2})
        if routine["kind"] == "frame":
            emitter.ins("lw $ra, 28($sp)", reads={29}, writes={31})
            for slot in range(7):
                emitter.ins("lw $s%d, %d($sp)" % (slot, slot * 4),
                            reads={29}, writes={16 + slot})
            emitter.ins("addiu $sp, $sp, 32", reads={29}, writes={29})
        offset = emitter.ins("jr $ra", reads={31})
        emitter.ins("nop")
        emitter.record_cti(offset, True, False, False)
    emitter.close_block("EXIT")


def _emit_tail(emitter, routine, target_routine):
    arch = emitter.plan["arch"]
    target = target_routine["name"]
    if arch == "sparc":
        if routine["kind"] == "frame":
            offset = emitter.ins("ba %s" % target)
            emitter.ins("restore")
            emitter.record_cti(offset, True, False, True)
        else:
            offset = emitter.ins("ba %s" % target)
            emitter.ins("nop")
            emitter.record_cti(offset, True, False, False)
    else:
        if routine["kind"] == "frame":
            emitter.ins("lw $ra, 28($sp)", reads={29}, writes={31})
            for slot in range(7):
                emitter.ins("lw $s%d, %d($sp)" % (slot, slot * 4),
                            reads={29}, writes={16 + slot})
            emitter.ins("addiu $sp, $sp, 32", reads={29}, writes={29})
        # j, not b: beq $zero,$zero keeps a perceived fall-through edge
        # into whatever follows, which would let the walker absorb an
        # adjacent hidden routine.
        offset = emitter.ins("j %s" % target)
        emitter.ins("nop")
        emitter.record_cti(offset, True, False, False)
    emitter.record_transfer(offset, target, "tail")
    emitter.close_block("EXIT")


# -- filler operations -------------------------------------------------


def _op_li(emitter, reg, value):
    name = emitter.name_of(reg)
    if emitter.plan["arch"] == "sparc":
        emitter.ins("mov %d, %s" % (value, name), writes={reg})
    else:
        emitter.ins("li %s, %d" % (name, value), writes={reg})


_ALU_IMM = {"sparc": {"add": "add", "and": "and", "or": "or", "xor": "xor"},
            "mips": {"add": "addiu", "and": "andi", "or": "ori",
                     "xor": "xori"}}


def _emit_fillers(emitter, routine, rng, count):
    regs = emitter.regs
    arch = emitter.plan["arch"]
    for _ in range(count):
        kind = rng.choice(("li", "alu", "alu", "alu2", "st", "ld"))
        rd = rng.choice(regs.p)
        rs = rng.choice(regs.p)
        if kind == "li":
            _op_li(emitter, rd, rng.randint(1, 99))
        elif kind == "alu":
            op = rng.choice(sorted(_ALU_IMM[arch]))
            imm = rng.randint(1, 31)
            if arch == "sparc":
                emitter.ins("%s %s, %d, %s" % (_ALU_IMM[arch][op],
                                               emitter.name_of(rs), imm,
                                               emitter.name_of(rd)),
                            reads={rs}, writes={rd})
            else:
                emitter.ins("%s %s, %s, %d" % (_ALU_IMM[arch][op],
                                               emitter.name_of(rd),
                                               emitter.name_of(rs), imm),
                            reads={rs}, writes={rd})
        elif kind == "alu2":
            rs2 = rng.choice(regs.p)
            if arch == "sparc":
                emitter.ins("add %s, %s, %s" % (emitter.name_of(rs),
                                                emitter.name_of(rs2),
                                                emitter.name_of(rd)),
                            reads={rs, rs2}, writes={rd})
            else:
                emitter.ins("addu %s, %s, %s" % (emitter.name_of(rd),
                                                 emitter.name_of(rs),
                                                 emitter.name_of(rs2)),
                            reads={rs, rs2}, writes={rd})
        elif kind == "st":
            slot = 4 * rng.randint(0, 15)
            if arch == "sparc":
                emitter.ins("set gbuf + %d, %%g4" % slot, writes={4})
                emitter.offset += 1  # set expands to sethi+or
                emitter.ins("st %s, [%%g4]" % emitter.name_of(rs),
                            reads={rs, 4})
            else:
                emitter.ins("la $t9, gbuf + %d" % slot, writes={25})
                emitter.offset += 1  # la expands to lui+ori
                emitter.ins("sw %s, 0($t9)" % emitter.name_of(rs),
                            reads={rs, 25})
        else:
            slot = 4 * rng.randint(0, 15)
            if arch == "sparc":
                emitter.ins("set gbuf + %d, %%g4" % slot, writes={4})
                emitter.offset += 1
                emitter.ins("ld [%%g4], %s" % emitter.name_of(rd),
                            reads={4}, writes={rd})
            else:
                emitter.ins("la $t9, gbuf + %d" % slot, writes={25})
                emitter.offset += 1
                emitter.ins("lw %s, 0($t9)" % emitter.name_of(rd),
                            reads={25}, writes={rd})


def _emit_delay_slot(emitter, routine, rng, fill):
    """One delay-slot word: a scratch-only filler or a nop."""
    regs = emitter.regs
    if not fill:
        emitter.ins("nop")
        return
    rs = rng.choice(regs.p)
    if emitter.plan["arch"] == "sparc":
        emitter.ins("add %s, 1, %%g3" % emitter.name_of(rs),
                    reads={rs}, writes={3})
    else:
        emitter.ins("addu $t8, %s, %s" % (emitter.name_of(rs),
                                          emitter.name_of(rs)),
                    reads={rs}, writes={24})


def _emit_cmp_branch(emitter, routine, rng, cond, reg, imm, target,
                     annul, fill):
    """Compare-and-branch; returns the branch word's offset."""
    arch = emitter.plan["arch"]
    name = emitter.name_of(reg)
    if arch == "sparc":
        mnems = {"eq": "be", "ne": "bne", "lt": "bl", "ge": "bge"}
        emitter.ins("cmp %s, %d" % (name, imm), reads={reg})
        branch = mnems[cond] + (",a" if annul else "")
        offset = emitter.ins("%s %s" % (branch, target))
    else:
        suffix = "l" if annul else ""
        if cond in ("eq", "ne"):
            emitter.ins("li $t8, %d" % imm, writes={24})
            mnem = ("beq" if cond == "eq" else "bne") + suffix
            offset = emitter.ins("%s %s, $t8, %s" % (mnem, name, target),
                                 reads={reg, 24})
        else:
            emitter.ins("slti $t8, %s, %d" % (name, imm),
                        reads={reg}, writes={24})
            mnem = ("bne" if cond == "lt" else "beq") + suffix
            offset = emitter.ins("%s $t8, $zero, %s" % (mnem, target),
                                 reads={24})
    _emit_delay_slot(emitter, routine, rng, fill)
    emitter.record_cti(offset, True, bool(annul), bool(fill))
    emitter.record_transfer(offset, target, "taken")
    return offset


def _emit_uncond(emitter, routine, rng, target, annul, fill, cti=False):
    arch = emitter.plan["arch"]
    if arch == "sparc" and cti:
        # A branch in a delay slot: executes one word at *target*, then
        # resumes at *target* — legal, deterministic, and guaranteed to
        # stop static discovery (the join starts with a nop).
        offset = emitter.ins("ba %s" % target)
        emitter.ins("ba,a %s" % target)
        emitter.record_cti(offset, True, False, True)
        emitter.record_transfer(offset, target, "cti-slot")
    elif arch == "sparc" and annul:
        offset = emitter.ins("ba,a %s" % target)
        emitter.record_cti(offset, False, False, False)
        emitter.record_transfer(offset, target, "uncond")
    elif arch == "sparc":
        offset = emitter.ins("ba %s" % target)
        _emit_delay_slot(emitter, routine, rng, fill)
        emitter.record_cti(offset, True, False, bool(fill))
        emitter.record_transfer(offset, target, "uncond")
    else:
        offset = emitter.ins("b %s" % target)
        _emit_delay_slot(emitter, routine, rng, fill)
        emitter.record_cti(offset, True, False, bool(fill))
        emitter.record_transfer(offset, target, "uncond")
    emitter.close_block(target)


# -- structured items --------------------------------------------------


def _emit_item(emitter, routine, item, expose=False):
    """Emit one plan item; returns the exposed entry label (if any)."""
    rng = random.Random(item.get("os", 0) ^ 0x5EED)
    kind = item["p"]
    if kind == "straight":
        _emit_fillers(emitter, routine, rng, item["n"])
        return None
    if kind == "print":
        _emit_print(emitter, routine)
        return None
    if kind == "island":
        return _emit_island(emitter, routine, rng, item)
    if kind == "call":
        return _emit_call(emitter, routine, item)
    if kind == "diamond":
        return _emit_diamond(emitter, routine, rng, item, expose)
    if kind == "loop":
        return _emit_loop(emitter, routine, rng, item)
    if kind == "irr":
        return _emit_irr(emitter, routine, rng, item)
    if kind == "switch":
        return _emit_switch(emitter, routine, rng, item, expose)
    raise ValueError("unknown item kind %r" % kind)


def _emit_print(emitter, routine):
    regs = emitter.regs
    if emitter.plan["arch"] == "sparc":
        emitter.ins("mov %s, %%o0" % emitter.name_of(regs.p[0]),
                    reads={regs.p[0]}, writes={8})
        emitter.ins("mov 2, %g1", writes={1})
        emitter.ins("ta 0")
        emitter.ins("mov 32, %o0", writes={8})
        emitter.ins("mov 3, %g1", writes={1})
        emitter.ins("ta 0")
    else:
        emitter.ins("move $a0, %s" % emitter.name_of(regs.p[0]),
                    reads={regs.p[0]}, writes={4})
        emitter.ins("li $v0, 2", writes={2})
        emitter.ins("syscall")
        emitter.ins("li $a0, 32", writes={4})
        emitter.ins("li $v0, 3", writes={2})
        emitter.ins("syscall")


def _emit_island(emitter, routine, rng, item):
    skip = emitter.new_label()
    _emit_uncond(emitter, routine, rng, skip, annul=0, fill=0)
    start = emitter.offset
    for _ in range(item.get("words", 2)):
        emitter.word("0xFFFFFFFF")
    emitter.islands.append([TEXT_BASE + 4 * start,
                            TEXT_BASE + 4 * emitter.offset])
    emitter.label(skip, fall_from_prev=False)
    return None


def _emit_call(emitter, routine, item):
    plan = emitter.plan
    callee_routine = plan["routines"][item["callee"]]
    if item["entry"] == "extra" \
            and callee_routine["extra_entry"] is not None:
        # Exposed joins get a deterministic name (see _emit_diamond /
        # _emit_switch), so callers can reference them before the
        # callee is emitted.
        label = "%s_e2" % callee_routine["name"]
    else:
        label = callee_routine["name"]
    arch = plan["arch"]
    regs = emitter.regs
    # Establish every register the callee reads before writing on the
    # entered path: its skipped param initializers, plus the whole pool
    # when entering at the exposed join (the routine-top initializers
    # never run on that path).  No editable CFG point exists between
    # these defs and the callee's entry — the defs and the call share a
    # basic block and call delay slots are uneditable — so the values
    # survive instrumentation.  Without them the callee reads junk that
    # edits legitimately change, and co-simulation rightly diverges.
    callee_regs = _MAPS[(arch, callee_routine["kind"])]
    if item["entry"] == "extra" \
            and callee_routine["extra_entry"] is not None:
        establish = list(callee_regs.p) + list(callee_regs.c)
    else:
        establish = [callee_regs.p[i] for i in callee_routine["uninit"]]
    for position, reg in enumerate(establish):
        _op_li(emitter, reg, 5 + 7 * position)
    if arch == "sparc":
        offset = emitter.ins("call %s" % label, writes={15})
        emitter.ins("nop")
        emitter.record_cti(offset, True, False, False)
        emitter.ins("add %s, %%o0, %s" % (emitter.name_of(regs.p[0]),
                                          emitter.name_of(regs.p[0])),
                    reads={regs.p[0], 8}, writes={regs.p[0]})
    else:
        offset = emitter.ins("jal %s" % label, writes={31})
        emitter.ins("nop")
        emitter.record_cti(offset, True, False, False)
        emitter.ins("addu %s, %s, $v0" % (emitter.name_of(regs.p[0]),
                                          emitter.name_of(regs.p[0])),
                    reads={regs.p[0], 2}, writes={regs.p[0]})
    emitter.calls.append({"src": TEXT_BASE + 4 * offset, "callee": label})
    return None


def _emit_diamond(emitter, routine, rng, item, expose=False):
    regs = emitter.regs
    taken = emitter.new_label()
    fall = emitter.new_label()
    join = "%s_e2" % routine["name"] if expose else emitter.new_label()
    reg = regs.p[rng.randrange(len(regs.p))]
    branch = _emit_cmp_branch(emitter, routine, rng, item["cond"], reg,
                              item["imm"], taken, item["annul"],
                              item["fill"])
    emitter.record_transfer(branch, fall, "fall")
    emitter.close_block(taken, fall)
    emitter.label(fall, fall_from_prev=False)
    _emit_fillers(emitter, routine, rng, item["n"])
    _emit_uncond(emitter, routine, rng, join, annul=0,
                 fill=item["fill"], cti=bool(item.get("cti")))
    emitter.label(taken, fall_from_prev=False)
    _emit_fillers(emitter, routine, rng, item["n"])
    emitter.label(join)  # taken arm falls into the join
    if item.get("cti"):
        emitter.ins("nop")  # re-executed once by the delay-slot branch
    return join


def _emit_loop(emitter, routine, rng, item):
    regs = emitter.regs
    if emitter.counter_depth >= len(regs.c):
        _emit_fillers(emitter, routine, rng, item["n"])
        return None
    counter = regs.c[emitter.counter_depth]
    emitter.counter_depth += 1
    head = emitter.new_label()
    _op_li(emitter, counter, 0)
    emitter.label(head)
    _emit_fillers(emitter, routine, rng, item["n"])
    for sub in item.get("body", ()):
        _emit_item(emitter, routine, sub)
    arch = emitter.plan["arch"]
    cname = emitter.name_of(counter)
    if arch == "sparc":
        emitter.ins("add %s, 1, %s" % (cname, cname),
                    reads={counter}, writes={counter})
        emitter.ins("cmp %s, %d" % (cname, item["bound"]), reads={counter})
        offset = emitter.ins("bne %s" % head)
    else:
        emitter.ins("addiu %s, %s, 1" % (cname, cname),
                    reads={counter}, writes={counter})
        emitter.ins("sltiu $t8, %s, %d" % (cname, item["bound"]),
                    reads={counter}, writes={24})
        suffix = "l" if item["annul"] else ""
        offset = emitter.ins("bne%s $t8, $zero, %s" % (suffix, head),
                             reads={24})
    _emit_delay_slot(emitter, routine, rng, item["fill"])
    emitter.record_cti(offset, True, bool(arch == "mips" and item["annul"]),
                       bool(item["fill"]))
    emitter.record_transfer(offset, head, "taken")
    after = emitter.new_label()
    emitter.record_transfer(offset, after, "fall")
    emitter.close_block(head, after)
    emitter.label(after, fall_from_prev=False)
    emitter.counter_depth -= 1
    return None


def _emit_irr(emitter, routine, rng, item):
    """Two-entry cycle: the header jumps into the middle of the loop."""
    regs = emitter.regs
    if emitter.counter_depth >= len(regs.c):
        _emit_fillers(emitter, routine, rng, item["n"])
        return None
    counter = regs.c[emitter.counter_depth]
    emitter.counter_depth += 1
    body_x = emitter.new_label()
    body_y = emitter.new_label()
    reg = regs.p[rng.randrange(len(regs.p))]
    _op_li(emitter, counter, 0)
    branch = _emit_cmp_branch(emitter, routine, rng, item["cond"], reg,
                              item["imm"], body_y, annul=0, fill=0)
    emitter.record_transfer(branch, body_x, "fall")
    emitter.close_block(body_x, body_y)
    emitter.label(body_x, fall_from_prev=False)
    _emit_fillers(emitter, routine, rng, item["n"])
    emitter.label(body_y)  # x falls into y; header also branches to y
    _emit_fillers(emitter, routine, rng, item["n"])
    arch = emitter.plan["arch"]
    cname = emitter.name_of(counter)
    if arch == "sparc":
        emitter.ins("add %s, 1, %s" % (cname, cname),
                    reads={counter}, writes={counter})
        emitter.ins("cmp %s, %d" % (cname, item["bound"]), reads={counter})
        offset = emitter.ins("bne %s" % body_x)
        emitter.ins("nop")
    else:
        emitter.ins("addiu %s, %s, 1" % (cname, cname),
                    reads={counter}, writes={counter})
        emitter.ins("sltiu $t8, %s, %d" % (cname, item["bound"]),
                    reads={counter}, writes={24})
        offset = emitter.ins("bne $t8, $zero, %s" % body_x, reads={24})
        emitter.ins("nop")
    emitter.record_cti(offset, True, False, False)
    emitter.record_transfer(offset, body_x, "taken")
    # The latch falls through into whatever follows; the block stays
    # open, but the back edge must still feed the liveness truth.
    if emitter.block is not None and not emitter.block.closed:
        emitter.block.succs.append(body_x)
    emitter.counter_depth -= 1
    return None


def _emit_switch(emitter, routine, rng, item, expose=False):
    """The paper's §3.1 dispatch-table idiom, masked for termination."""
    regs = emitter.regs
    arch = emitter.plan["arch"]
    cases = item["cases"]
    table = emitter.new_label()
    case_labels = [emitter.new_label() for _ in range(cases)]
    default = emitter.new_label()
    join = "%s_e2" % routine["name"] if expose else emitter.new_label()
    reg = regs.p[rng.randrange(len(regs.p))]
    idx = emitter.name_of(regs.sw_idx)
    scaled = emitter.name_of(regs.scratch)
    base = emitter.name_of(regs.addr)
    entry = emitter.name_of(regs.sw_ent)
    if arch == "sparc":
        emitter.ins("and %s, %d, %s" % (emitter.name_of(reg), item["mask"],
                                        idx),
                    reads={reg}, writes={regs.sw_idx})
        emitter.ins("cmp %s, %d" % (idx, cases - 1), reads={regs.sw_idx})
        guard = emitter.ins("bgu %s" % default)
        emitter.ins("nop")
        emitter.record_cti(guard, True, False, False)
        emitter.record_transfer(guard, default, "taken")
        dispatch = emitter.new_label()
        emitter.record_transfer(guard, dispatch, "fall")
        emitter.close_block(default, dispatch)
        emitter.label(dispatch, fall_from_prev=False)
        emitter.ins("sll %s, 2, %s" % (idx, scaled),
                    reads={regs.sw_idx}, writes={regs.scratch})
        emitter.ins("set %s, %s" % (table, base), writes={regs.addr})
        emitter.offset += 1
        emitter.ins("ld [%s + %s], %s" % (base, scaled, entry),
                    reads={regs.addr, regs.scratch}, writes={regs.sw_ent})
        jump = emitter.ins("jmp %s" % entry, reads={regs.sw_ent})
        emitter.ins("nop")
        emitter.record_cti(jump, True, False, False)
    else:
        emitter.ins("andi %s, %s, %d" % (idx, emitter.name_of(reg),
                                         item["mask"]),
                    reads={reg}, writes={regs.sw_idx})
        emitter.ins("sltiu $t8, %s, %d" % (idx, cases),
                    reads={regs.sw_idx}, writes={24})
        guard = emitter.ins("beq $t8, $zero, %s" % default, reads={24})
        emitter.ins("nop")
        emitter.record_cti(guard, True, False, False)
        emitter.record_transfer(guard, default, "taken")
        dispatch = emitter.new_label()
        emitter.record_transfer(guard, dispatch, "fall")
        emitter.close_block(default, dispatch)
        emitter.label(dispatch, fall_from_prev=False)
        emitter.ins("sll %s, %s, 2" % (scaled, idx),
                    reads={regs.sw_idx}, writes={regs.scratch})
        emitter.ins("la %s, %s" % (base, table), writes={regs.addr})
        emitter.offset += 1
        emitter.ins("addu %s, %s, %s" % (base, base, scaled),
                    reads={regs.addr, regs.scratch}, writes={regs.addr})
        emitter.ins("lw %s, 0(%s)" % (entry, base),
                    reads={regs.addr}, writes={regs.sw_ent})
        jump = emitter.ins("jr %s" % entry, reads={regs.sw_ent})
        emitter.ins("nop")
        emitter.record_cti(jump, True, False, False)
    emitter.close_block(*case_labels)
    table_offset = None
    if item["in_text"]:
        table_offset = emitter.offset
        emitter.raw("%s:" % table)
        emitter.label_offsets[table] = emitter.offset
        for case in case_labels:
            emitter.word(case)
    else:
        emitter.rodata.append((table, list(case_labels)))
    emitter.tables.append({
        "jmp": TEXT_BASE + 4 * jump,
        "table_label": table,
        "table_offset": table_offset,
        "bound": cases,
        "target_labels": list(case_labels),
        "in_text": bool(item["in_text"]),
    })
    for case in case_labels:
        emitter.label(case, fall_from_prev=False)
        _emit_fillers(emitter, routine, rng, max(1, item["n"] - 1))
        _emit_uncond(emitter, routine, rng, join, annul=0, fill=0)
    emitter.label(default, fall_from_prev=False)
    _emit_fillers(emitter, routine, rng, item["n"])
    emitter.label(join)  # default falls into the join
    return join


# ----------------------------------------------------------------------
# Ground-truth liveness (leaf, single-entry routines only).


def _has_cti(items):
    return any(item.get("cti") or _has_cti(item.get("body", ()))
               for item in items)


def _truth_live_in(emitter, routine):
    if routine["kind"] != "leaf" or routine["extra_entry"] is not None:
        return None
    if _has_cti(routine["items"]):
        return None
    blocks = {block.label: block for block in emitter.blocks}
    live_in = {label: set() for label in blocks}
    changed = True
    while changed:
        changed = False
        for label, block in blocks.items():
            out = set()
            for succ in block.succs:
                if succ != "EXIT" and succ in live_in:
                    out |= live_in[succ]
            new_in = block.uses | (out - block.defs)
            if new_in != live_in[label]:
                live_in[label] = new_in
                changed = True
    entry = emitter.blocks[0]
    return sorted(live_in[entry.label])


# ----------------------------------------------------------------------
# Manifest resolution: label offsets -> absolute addresses.


def _finish_manifest(emitter, image):
    plan = emitter.plan
    text = image.get_section(".text")
    text_end = text.vaddr + text.size
    # Sanity: our offset bookkeeping must agree with the assembler.
    for routine in plan["routines"]:
        symbol = image.find_symbol(routine["name"])
        expected = emitter.addr_of(routine["name"])
        if symbol is None or symbol.value != expected:
            raise AssertionError(
                "offset bookkeeping drifted for %s: symbol=%r expected=0x%x"
                % (routine["name"], symbol, expected))
    routines = []
    ordered = emitter.manifest_routines
    for position, record in enumerate(ordered):
        # _start is emitted first; routines tile the text section.
        start = emitter.addr_of(record["label"])
        if position + 1 < len(ordered):
            end = emitter.addr_of(ordered[position + 1]["label"])
        else:
            end = text_end
        entries = [start]
        if record["extra_entry_label"]:
            entries.append(emitter.addr_of(record["extra_entry_label"]))
        transfers = []
        for transfer in record["transfers"]:
            transfers.append({"src": transfer["src"],
                              "dst": emitter.addr_of(transfer["dst"]),
                              "kind": transfer["kind"]})
        calls = [{"src": call["src"],
                  "dst": emitter.addr_of(call["callee"])}
                 for call in record["calls"]]
        tables = []
        for table in record["tables"]:
            if table["in_text"]:
                table_addr = TEXT_BASE + 4 * table["table_offset"]
            else:
                symbol = image.find_symbol(table["table_label"])
                table_addr = symbol.value if symbol else None
            tables.append({
                "jmp": table["jmp"],
                "table": table_addr,
                "bound": table["bound"],
                "targets": [emitter.addr_of(label)
                            for label in table["target_labels"]],
                "in_text": table["in_text"],
            })
        routines.append({
            "name": record["name"],
            "start": start,
            "end": end,
            "hidden": record["hidden"],
            "leaf": record["leaf"],
            "entries": sorted(entries),
            "incomplete_ok": record["incomplete_ok"],
            "leaders": sorted(emitter.addr_of(label)
                              for label in record["leader_labels"]),
            "transfers": transfers,
            "calls": calls,
            "tables": tables,
            "islands": record["islands"],
            "ctis": record["ctis"],
            "live_in": record["live_in"],
        })
    return {
        "version": GEN_VERSION,
        "arch": plan["arch"],
        "seed": plan["seed"],
        "entry": image.entry,
        "text_end": text_end,
        "routines": routines,
    }
