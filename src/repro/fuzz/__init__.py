"""Generative executable fuzzing (DESIGN.md §5g).

EEL's correctness argument (paper §3.1, §3.3) covers executables with
hidden routines, annulled delay slots, unanalyzable control flow, and
in-text dispatch tables — shapes our hand-written corpus only samples.
This subsystem manufactures them on demand:

* :mod:`repro.fuzz.gen` — synthesize random-but-well-formed SPARC and
  MIPS executables from a seeded RNG, each with a ground-truth manifest
  (CFG edges, table extents, entry points, live-in registers);
* :mod:`repro.fuzz.check` — compare the analysis pipeline's answers
  against the manifest (truth, not self-consistency);
* :mod:`repro.fuzz.campaign` — generate → analyze → instrument →
  verify → classify, fanned out across processes;
* :mod:`repro.fuzz.shrink` — minimize failing plans by structured
  deltas to a small reproducer;
* :mod:`repro.fuzz.corpus` — store reproducers and replay them as a
  regression suite (``repro fuzz --corpus-only``).
"""

from repro.fuzz.gen import GenConfig, build_plan, generate, plan_to_program

__all__ = [
    "GenConfig",
    "build_plan",
    "check_manifest",
    "classify_plan",
    "classify_seed",
    "generate",
    "plan_to_program",
    "replay_corpus",
    "run_campaign",
    "shrink_plan",
]


def __getattr__(name):
    # Lazy: importing repro.fuzz for the generator alone must not pull
    # in the verify/tools stack.
    if name in ("classify_plan", "classify_seed", "run_campaign",
                "replay_corpus"):
        from repro.fuzz import campaign

        return getattr(campaign, name)
    if name == "check_manifest":
        from repro.fuzz.check import check_manifest

        return check_manifest
    if name == "shrink_plan":
        from repro.fuzz.shrink import shrink_plan

        return shrink_plan
    raise AttributeError(name)
