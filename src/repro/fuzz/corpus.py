"""Reproducer storage: one JSON file per minimized failing plan.

A corpus entry records everything needed to replay a failure without
the original campaign: the shrunken plan (self-contained — replaying
does not re-run the generator's RNG), the seed and generator config it
came from, the failure class observed, and a triage status:

* ``new`` — found by a campaign, not yet triaged.  Replays like an
  xfail but `repro fuzz --corpus-only` reports it so CI stays red
  until a human either fixes the bug (flip to ``fixed``) or accepts it
  as a known failure (flip to ``xfail`` and add a tracking test).
* ``xfail`` — known failure; replay must reproduce the *same* failure
  class.  Reproducing a different class, or coming back clean
  ("unexpectedly fixed"), is an error either way: the entry no longer
  documents reality.
* ``fixed`` — regression guard; replay must be clean.

Entries are plain JSON so a reproducer can be read, diffed, and edited
by hand during triage.
"""

import json
import os

_REQUIRED = ("id", "failure", "status", "seed", "plan")
_STATUSES = ("new", "xfail", "fixed")


class CorpusError(Exception):
    pass


def entry_id(failure, seed):
    """Stable filename stem for a failure class + seed."""
    slug = failure.replace(":", "-").replace("/", "-")
    return "%s-seed%d" % (slug, seed)


def make_entry(failure, detail, seed, plan, status="new"):
    return {
        "id": entry_id(failure, seed),
        "failure": failure,
        "detail": detail,
        "status": status,
        "seed": seed,
        "plan": plan,
    }


def save_entry(corpus_dir, entry):
    """Write *entry* to ``<corpus_dir>/<id>.json`` (atomic)."""
    _validate(entry)
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, entry["id"] + ".json")
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(entry, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def load_corpus(corpus_dir):
    """All entries in *corpus_dir*, sorted by id; [] if it's empty."""
    if not os.path.isdir(corpus_dir):
        raise CorpusError("corpus directory %r does not exist" % corpus_dir)
    entries = []
    for name in sorted(os.listdir(corpus_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(corpus_dir, name)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (OSError, ValueError) as error:
            raise CorpusError("unreadable corpus entry %s: %s"
                              % (path, error))
        _validate(entry, source=path)
        entries.append(entry)
    return entries


def known_failures(corpus_dir):
    """Failure classes with an ``xfail`` (triaged, accepted) entry."""
    if not os.path.isdir(corpus_dir):
        return set()
    return {entry["failure"] for entry in load_corpus(corpus_dir)
            if entry["status"] == "xfail"}


def _validate(entry, source="entry"):
    for key in _REQUIRED:
        if key not in entry:
            raise CorpusError("%s missing field %r" % (source, key))
    if entry["status"] not in _STATUSES:
        raise CorpusError("%s has status %r (want one of %s)"
                          % (source, entry["status"], ", ".join(_STATUSES)))
