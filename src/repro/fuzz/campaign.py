"""Campaign driver: generate -> analyze -> edit -> verify -> classify.

Each seed becomes one generated executable which is pushed through the
entire pipeline and classified:

* ``clean`` — analysis matched the manifest and every tool's edit
  verified (lints + lockstep co-simulation);
* ``mismatch:<category>`` — the analysis disagreed with ground truth
  (categories from :mod:`repro.fuzz.check`: extent, hidden, entries,
  leader, transfer, call, table, live, incomplete);
* ``verify:<tool>`` — instrumentation succeeded but differential
  verification found an error;
* ``meta-reject:<reason>`` — the image carried ``.eel.meta`` (the
  ``meta_mode`` campaigns) and the trust checks rejected it with that
  typed reason (see :mod:`repro.core.trust`);
* ``crash:<stage>:<Exception>`` — some pipeline stage raised.

Campaigns fan out across processes; each worker counts ``fuzz.*`` and
``verify.*`` metrics in its own process and returns the deltas so the
parent can merge them (the ``repro verify --jobs`` pattern) and
``--stats-json`` stays truthful.

A campaign's exit status is decided against the reproducer corpus
(:mod:`repro.fuzz.corpus`): failure classes with a triaged ``xfail``
entry are *known* and do not fail the run; any other non-clean class is
shrunk to a minimal reproducer, stored with status ``new``, and fails
the campaign until triaged.
"""

import collections
import os
import time
from time import perf_counter

from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span

from repro.fuzz import corpus as _corpus
from repro.fuzz.gen import GenConfig, build_plan, plan_to_program

_C_SEEDS = _metrics.counter("fuzz.seeds")
_C_CLEAN = _metrics.counter("fuzz.clean")
_C_MISMATCH = _metrics.counter("fuzz.mismatches")
_C_VERIFY = _metrics.counter("fuzz.verify_failures")
_C_CRASH = _metrics.counter("fuzz.crashes")
_C_KNOWN = _metrics.counter("fuzz.known_failures")
_C_STORED = _metrics.counter("fuzz.reproducers_stored")
_C_META_REJECT = _metrics.counter("fuzz.meta_rejects")

Outcome = collections.namedtuple("Outcome", "seed status detail")

_DELTA_PREFIXES = ("fuzz.", "verify.")


def tools_for(arch):
    """Editing tools exercised per generated image (sfi/elsie are
    SPARC-only)."""
    return ("qpt", "sfi", "elsie") if arch == "sparc" else ("qpt",)


# ----------------------------------------------------------------------
# Classification
# ----------------------------------------------------------------------


class _Timed:
    """``with _Timed(timings, "gen"):`` — record a stage's wall time.

    Records on every exit path (including raises), so crash outcomes
    still carry the timings of the stage that crashed.
    """

    __slots__ = ("timings", "stage", "_start")

    def __init__(self, timings, stage):
        self.timings = timings
        self.stage = stage

    def __enter__(self):
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        if self.timings is not None:
            self.timings[self.stage] = round(
                perf_counter() - self._start, 6)
        return False


def _adoptable_facts(executable):
    """{start: {summary, text_hash}} for every analyzable routine.

    The donor record :meth:`Executable._adoption_view` checks during a
    later, closely related analysis (the shrinker's delta candidates);
    a routine whose analysis fails to summarize is simply left out.
    """
    from repro.cache.summary import summarize_routine
    from repro.core.facts import rules as fact_rules

    facts = {}
    for routine in executable.all_routines():
        try:
            facts[routine.start] = {
                "summary": summarize_routine(routine),
                "text_hash": fact_rules.text_hash(
                    executable, routine.start, routine.end),
            }
        except Exception:
            continue
    return facts


def classify_plan(plan, label="fuzz", timings=None, adopt=None,
                  capture=None, meta_mode=None):
    """Run one plan through the full pipeline; return (status, detail).

    *timings*, when a dict, is filled with per-stage wall-clock seconds
    (``gen``, ``analyze``, ``check``, ``instrument:<tool>``,
    ``verify:<tool>``) — the per-seed breakdown the campaign writes to
    its event log.

    *adopt* passes a parent plan's surviving facts (see
    :func:`_adoptable_facts`) into analysis: byte-identical routines
    restore their CFGs instead of rebuilding, which is what makes the
    shrinker's long delta chains cheap.  *capture*, when a dict, gets
    a ``"facts"`` entry holding this plan's adoptable facts for the
    next delta.

    *meta_mode* turns the generator into a metadata producer:
    ``"emit"`` attaches a ``.eel.meta`` table derived from the plan's
    ground-truth manifest (analysis must trust it and still classify
    ``clean``); ``"corrupt"`` additionally applies one seeded lie (see
    :mod:`repro.fuzz.meta`) and the outcome must be reject-or-caught —
    a trust rejection returns ``meta-reject:<reason>``.
    """
    from repro.core.executable import Executable
    from repro.tools import instrument_image
    from repro.verify import verify_session

    with _span("fuzz.seed", seed=plan.get("seed")):
        _C_SEEDS.inc()
        try:
            with _Timed(timings, "gen"):
                program = plan_to_program(plan)
                if meta_mode:
                    mutation = _attach_fuzz_meta(program, meta_mode)
                    if capture is not None:
                        capture["meta_mutation"] = mutation
        except Exception as error:
            _C_CRASH.inc()
            return "crash:gen:%s" % type(error).__name__, str(error)
        try:
            with _Timed(timings, "analyze"):
                executable = Executable(program.image)
                executable.read_contents(adopt=adopt,
                                         trust_meta=True if meta_mode
                                         else None)
        except Exception as error:
            _C_CRASH.inc()
            return "crash:analyze:%s" % type(error).__name__, str(error)
        if meta_mode and executable.meta_status[0] == "rejected":
            _C_META_REJECT.inc()
            return ("meta-reject:%s" % executable.meta_status[1],
                    executable.meta_reject_detail or "")
        if capture is not None:
            capture["facts"] = _adoptable_facts(executable)

        from repro.fuzz.check import check_manifest

        try:
            with _Timed(timings, "check"):
                codes = check_manifest(executable, program.manifest)
        except Exception as error:
            _C_CRASH.inc()
            return "crash:check:%s" % type(error).__name__, str(error)
        if codes:
            _C_MISMATCH.inc()
            category = codes[0].split(":", 1)[0]
            return "mismatch:%s" % category, "; ".join(codes)

        for tool in tools_for(plan["arch"]):
            try:
                with _Timed(timings, "instrument:%s" % tool):
                    session = instrument_image(program.image, tool)
            except Exception as error:
                _C_CRASH.inc()
                return ("crash:instrument-%s:%s" % (tool,
                                                    type(error).__name__),
                        str(error))
            try:
                with _Timed(timings, "verify:%s" % tool):
                    result = verify_session(
                        session.executable, session.edited_image,
                        configure_edited=session.configure_edited,
                        use_memo=False, label="%s-%s" % (label, tool))
            except Exception as error:
                _C_CRASH.inc()
                return ("crash:verify-%s:%s" % (tool, type(error).__name__),
                        str(error))
            if not result.ok:
                _C_VERIFY.inc()
                return "verify:%s" % tool, result.render()
        _C_CLEAN.inc()
        return "clean", ""


def _attach_fuzz_meta(program, meta_mode):
    """Attach manifest-derived metadata to a generated image; returns
    the mutation kind applied (None in plain ``emit`` mode)."""
    from repro.binfmt.meta import attach_meta
    from repro.fuzz.meta import corrupt_meta, meta_from_manifest

    meta = meta_from_manifest(program.manifest, program.image)
    mutation = None
    if meta_mode == "corrupt":
        meta, mutation = corrupt_meta(meta, program.plan["seed"])
    attach_meta(program.image, meta)
    return mutation


def classify_seed(seed, config=None, timings=None, meta_mode=None):
    config = config or GenConfig()
    return classify_plan(build_plan(seed, config), label="fuzz-%d" % seed,
                         timings=timings, meta_mode=meta_mode)


# ----------------------------------------------------------------------
# Process-pool fan-out (counter-delta merging, as in `repro verify`)
# ----------------------------------------------------------------------


def _fuzz_counters():
    return {name: instrument.snapshot()
            for name, instrument in _metrics.REGISTRY.counters.items()
            if name.startswith(_DELTA_PREFIXES)}


def _campaign_worker(payload):
    """Pool worker: classify one seed, return its counter deltas.

    Generated images are all distinct, so persisting their analyses
    would only churn the cache directory: the worker runs cache-off.
    """
    seed, config_dict, meta_mode = payload
    os.environ["REPRO_CACHE"] = "off"
    before = _fuzz_counters()
    timings = {}
    try:
        status, detail = classify_seed(seed, GenConfig(**config_dict),
                                       timings=timings,
                                       meta_mode=meta_mode)
    except Exception as error:  # classify itself must not raise
        status, detail = "crash:driver:%s" % type(error).__name__, str(error)
    after = _fuzz_counters()
    deltas = {key: after[key] - before.get(key, 0) for key in after
              if after[key] != before.get(key, 0)}
    return seed, status, detail, deltas, timings


def _merge_deltas(deltas):
    for name, delta in deltas.items():
        _metrics.REGISTRY.counter(name).inc(delta)


class CampaignResult:
    """Everything a campaign learned, plus corpus bookkeeping."""

    def __init__(self):
        self.outcomes = []
        self.skipped = 0  # seeds dropped by the time budget
        self.stored = []  # paths of newly stored reproducers
        self.known = []  # non-clean outcomes explained by xfail entries
        self.unexplained = []  # non-clean outcomes that fail the run

    @property
    def clean(self):
        return sum(1 for o in self.outcomes if o.status == "clean")

    @property
    def ok(self):
        return not self.unexplained

    def by_class(self):
        classes = collections.OrderedDict()
        for outcome in self.outcomes:
            if outcome.status != "clean":
                classes.setdefault(outcome.status, []).append(outcome)
        return classes

    def render(self):
        lines = ["fuzz: %d seeds, %d clean, %d skipped (time budget)"
                 % (len(self.outcomes), self.clean, self.skipped)]
        for status, outcomes in self.by_class().items():
            seeds = ", ".join(str(o.seed) for o in outcomes[:5])
            more = "" if len(outcomes) <= 5 else ", ..."
            tag = "known" if any(o in self.known for o in outcomes) \
                else "NEW"
            lines.append("  %-28s %4d seed(s) [%s]: %s%s"
                         % (status, len(outcomes), tag, seeds, more))
        for path in self.stored:
            lines.append("  stored reproducer: %s" % path)
        if self.ok:
            lines.append("fuzz: PASS (no unexplained failures)")
        else:
            lines.append("fuzz: FAIL (%d unexplained failure class(es) — "
                         "triage the stored reproducers)"
                         % len({o.status for o in self.unexplained}))
        return "\n".join(lines)


def run_campaign(seeds, base_seed=0, jobs=1, config=None,
                 time_budget=None, corpus_dir=None, shrink=True,
                 progress=None, meta_mode=None):
    """Classify ``base_seed .. base_seed+seeds-1``; triage via corpus.

    *progress*, when given, is called with each :class:`Outcome` as it
    arrives.  *meta_mode* (``"emit"``/``"corrupt"``) makes every
    generated image carry manifest-derived ``.eel.meta`` — see
    :func:`classify_plan`.  Returns a :class:`CampaignResult`.
    """
    config = config or GenConfig()
    result = CampaignResult()
    started = time.monotonic()
    payloads = [(base_seed + i, config.to_dict(), meta_mode)
                for i in range(seeds)]

    def out_of_time():
        return (time_budget is not None
                and time.monotonic() - started > time_budget)

    _events.emit("campaign.begin", seeds=seeds, base_seed=base_seed,
                 jobs=jobs, time_budget_s=time_budget)
    with _span("fuzz.campaign", seeds=seeds, jobs=jobs):
        if jobs > 1:
            _parallel_outcomes(payloads, jobs, result, out_of_time,
                               progress)
        else:
            _serial_outcomes(payloads, result, out_of_time, progress)
        _triage(result, config, corpus_dir, shrink, meta_mode=meta_mode)
    _events.emit("campaign.end", seeds=len(result.outcomes),
                 clean=result.clean, skipped=result.skipped,
                 known=len(result.known),
                 unexplained=len(result.unexplained),
                 stored=len(result.stored), ok=result.ok,
                 elapsed_s=round(time.monotonic() - started, 3))
    return result


def _serial_outcomes(payloads, result, out_of_time, progress):
    # The worker flips REPRO_CACHE off for the child process; serially
    # we are the "child", so save and restore the caller's setting.
    saved = os.environ.get("REPRO_CACHE")
    try:
        for index, payload in enumerate(payloads):
            if out_of_time():
                result.skipped = len(payloads) - index
                break
            seed, status, detail, _, timings = _campaign_worker(payload)
            outcome = Outcome(seed, status, detail)
            _events.emit("fuzz.seed", seed=seed, status=status,
                         timings=timings)
            result.outcomes.append(outcome)
            if progress:
                progress(outcome)
    finally:
        if saved is None:
            os.environ.pop("REPRO_CACHE", None)
        else:
            os.environ["REPRO_CACHE"] = saved


def _parallel_outcomes(payloads, jobs, result, out_of_time, progress):
    import concurrent.futures

    try:
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=jobs)
    except (OSError, ValueError):
        # Constrained environments (no /dev/shm, no fork): run serially.
        _serial_outcomes(payloads, result, out_of_time, progress)
        return
    with pool:
        futures = [pool.submit(_campaign_worker, payload)
                   for payload in payloads]
        for future in futures:
            if out_of_time():
                for pending in futures:
                    pending.cancel()
                result.skipped = sum(1 for f in futures if f.cancelled())
                break
            seed, status, detail, deltas, timings = future.result()
            _merge_deltas(deltas)
            outcome = Outcome(seed, status, detail)
            _events.emit("fuzz.seed", seed=seed, status=status,
                         timings=timings)
            result.outcomes.append(outcome)
            if progress:
                progress(outcome)


# ----------------------------------------------------------------------
# Triage against the corpus
# ----------------------------------------------------------------------


def _triage(result, config, corpus_dir, shrink, meta_mode=None):
    known = (_corpus.known_failures(corpus_dir)
             if corpus_dir is not None else set())
    new_classes = collections.OrderedDict()  # status -> first Outcome
    for outcome in result.outcomes:
        if outcome.status == "clean":
            continue
        if outcome.status in known:
            _C_KNOWN.inc()
            result.known.append(outcome)
        else:
            result.unexplained.append(outcome)
            new_classes.setdefault(outcome.status, outcome)
    if corpus_dir is None:
        return
    for status, outcome in new_classes.items():
        plan = build_plan(outcome.seed, config)
        if shrink:
            from repro.fuzz.shrink import shrink_plan

            # Each accepted delta becomes the next candidates' donor:
            # routines the delta left byte-identical adopt the parent's
            # CFG/liveness facts instead of re-deriving them.
            parent = {"facts": None}

            def _reproduces(candidate, status=status, parent=parent):
                captured = {}
                matched = classify_plan(
                    candidate, label="shrink", adopt=parent["facts"],
                    capture=captured, meta_mode=meta_mode)[0] == status
                if matched and captured.get("facts"):
                    parent["facts"] = captured["facts"]
                return matched

            plan = shrink_plan(plan, _reproduces)
        entry = _corpus.make_entry(status, outcome.detail, outcome.seed,
                                   plan, status="new")
        result.stored.append(_corpus.save_entry(corpus_dir, entry))
        _C_STORED.inc()


# ----------------------------------------------------------------------
# Corpus replay (`repro fuzz --corpus-only`)
# ----------------------------------------------------------------------


class ReplayResult:
    def __init__(self):
        self.passed = []  # (entry_id, note)
        self.failed = []  # (entry_id, note)

    @property
    def ok(self):
        return not self.failed

    def render(self):
        lines = []
        for entry_id, note in self.passed:
            lines.append("  %-40s %s" % (entry_id, note))
        for entry_id, note in self.failed:
            lines.append("  %-40s FAIL: %s" % (entry_id, note))
        lines.append("corpus: %d replayed, %d failed%s"
                     % (len(self.passed) + len(self.failed),
                        len(self.failed), "" if self.failed else " — PASS"))
        return "\n".join(lines)


def replay_corpus(corpus_dir, progress=None):
    """Replay every stored reproducer against its triage status."""
    result = ReplayResult()
    with _span("fuzz.replay"):
        for entry in _corpus.load_corpus(corpus_dir):
            status, _ = classify_plan(entry["plan"],
                                      label="replay-%s" % entry["id"])
            record = _judge_replay(entry, status)
            (result.passed if record[0] else result.failed).append(record[1:])
            if progress:
                progress(entry, record)
    return result


# ----------------------------------------------------------------------
# Metadata-corruption campaign (`repro fuzz --corrupt-meta`)
# ----------------------------------------------------------------------


class MetaCampaignResult:
    """Reject-or-caught bookkeeping for a corruption campaign."""

    def __init__(self):
        self.rejected = []  # Outcome: trust checks refused the table
        self.caught = []  # Outcome: lie trusted, divergence caught later
        self.silent = []  # Outcome: corrupted seed classified clean

    @property
    def ok(self):
        return not self.silent

    def render(self):
        total = len(self.rejected) + len(self.caught) + len(self.silent)
        by_reason = collections.Counter(
            o.status for o in self.rejected + self.caught)
        lines = ["meta-fuzz: %d corrupted seed(s), %d rejected, "
                 "%d caught downstream, %d silent"
                 % (total, len(self.rejected), len(self.caught),
                    len(self.silent))]
        for status, count in sorted(by_reason.items()):
            lines.append("  %-28s %4d seed(s)" % (status, count))
        for outcome in self.silent:
            lines.append("  SILENT LIE seed %d: corrupted metadata "
                         "classified clean" % outcome.seed)
        lines.append("meta-fuzz: %s" % ("PASS (every lie rejected or "
                                        "caught)" if self.ok
                                        else "FAIL (silent wrong "
                                        "answers)"))
        return "\n".join(lines)


def run_meta_corruption_campaign(seeds, base_seed=0, jobs=1, config=None,
                                 progress=None):
    """Corrupt every seed's metadata; assert reject-or-caught.

    Each seed's image carries a ground-truth ``.eel.meta`` table with
    one seeded lie applied (:func:`repro.fuzz.meta.corrupt_meta`).  A
    seed passes if the trust checks reject the table
    (``meta-reject:<reason>``) or any downstream stage flags the
    divergence (mismatch/verify/crash); a ``clean`` classification
    means the lie silently survived and fails the campaign.
    """
    config = config or GenConfig()
    result = MetaCampaignResult()
    payloads = [(base_seed + i, config.to_dict(), "corrupt")
                for i in range(seeds)]
    collector = CampaignResult()

    def _collect(outcome):
        if outcome.status.startswith("meta-reject:"):
            result.rejected.append(outcome)
        elif outcome.status == "clean":
            result.silent.append(outcome)
        else:
            result.caught.append(outcome)
        if progress:
            progress(outcome)

    _events.emit("meta_campaign.begin", seeds=seeds, base_seed=base_seed,
                 jobs=jobs)
    with _span("fuzz.meta_campaign", seeds=seeds, jobs=jobs):
        if jobs > 1:
            _parallel_outcomes(payloads, jobs, collector,
                               lambda: False, _collect)
        else:
            _serial_outcomes(payloads, collector, lambda: False, _collect)
    _events.emit("meta_campaign.end", seeds=seeds,
                 rejected=len(result.rejected), caught=len(result.caught),
                 silent=len(result.silent), ok=result.ok)
    return result


def _judge_replay(entry, status):
    """(ok, entry_id, note) for one replayed entry."""
    expected = entry["failure"]
    if entry["status"] == "fixed":
        if status == "clean":
            return True, entry["id"], "clean (fixed, regression guard)"
        return False, entry["id"], ("regressed: %s reappeared as %s"
                                    % (expected, status))
    # xfail and new both must still reproduce the recorded class; new
    # additionally fails the replay because nobody has triaged it yet.
    if status == "clean":
        return False, entry["id"], ("unexpectedly fixed: flip status to "
                                    "'fixed' if intentional")
    if status != expected:
        return False, entry["id"], ("failure class changed: %s -> %s"
                                    % (expected, status))
    if entry["status"] == "new":
        return False, entry["id"], ("reproduces %s but is untriaged: "
                                    "fix it or mark it xfail" % status)
    return True, entry["id"], "xfail reproduces %s" % status
