"""Compare pipeline analysis results against a generator manifest.

The generator (:mod:`repro.fuzz.gen`) knows the true structure of every
executable it emits.  :func:`check_manifest` re-derives that structure
through the real pipeline — symbol-table refinement, CFG construction,
delay-slot normalization, indirect-jump resolution, liveness — and
reports every disagreement as a stable mismatch code.  Codes are
``category:detail`` strings; the category (text before the first ``:``)
is what the campaign driver uses as a failure class.

Truth directions matter:

* routine extents / hidden flags / entry points must match exactly;
* every manifest block leader must begin an analysis basic block
  (analysis may discover *more* leaders — edits split blocks — but may
  not miss one);
* every manifest transfer/call/table must be present with the right
  shape;
* manifest live-in registers are an under-approximation: they must be
  a subset of what liveness reports (a register the program truly reads
  must never be reported dead).

Routines flagged ``incomplete_ok`` (a branch hidden in a delay slot —
paper section 3.1 calls this flow the editor must refuse to touch)
relax the structural checks: the walker legitimately sees different
edges there, so only extent/identity checks apply.
"""

from repro.core.cfg import (
    BK_NORMAL,
    EK_COMPUTED,
    EK_ESCAPE,
    EK_FALL,
    EK_TAKEN,
    EK_UNCOND,
)

# Manifest transfer kind -> CFG edge kind that must appear on the path.
_KIND_EDGES = {
    "taken": (EK_TAKEN,),
    "fall": (EK_FALL,),
    "uncond": (EK_UNCOND, EK_COMPUTED),
}

# How many edges a transfer may traverse: cti block -> delay block ->
# target is the longest legal normalized path.
_PATH_DEPTH = 3


def check_manifest(executable, manifest):
    """Return a list of mismatch codes (empty means the analysis agrees).

    *executable* must already have had ``read_contents()`` run so the
    refined routine map exists.
    """
    mismatches = []
    analyzed = {routine.start: routine
                for routine in _all_routines(executable)}

    manifest_starts = set()
    for record in manifest["routines"]:
        manifest_starts.add(record["start"])
        routine = analyzed.get(record["start"])
        if routine is None:
            mismatches.append(
                "extent:%s missing routine at 0x%x"
                % (record["name"], record["start"]))
            continue
        mismatches.extend(_check_routine(routine, record))

    for start, routine in sorted(analyzed.items()):
        if start not in manifest_starts:
            mismatches.append(
                "extent:unexpected routine %s at 0x%x"
                % (routine.name, start))
    return mismatches


def _all_routines(executable):
    return list(executable.routines()) + list(executable.hidden_routines())


def _check_routine(routine, record):
    out = []
    name = record["name"]
    if routine.end != record["end"]:
        out.append("extent:%s end 0x%x != 0x%x"
                   % (name, routine.end, record["end"]))
    if routine.hidden != record["hidden"]:
        out.append("hidden:%s analysis=%s manifest=%s"
                   % (name, routine.hidden, record["hidden"]))
    if list(routine.entries) != list(record["entries"]):
        out.append("entries:%s analysis=%s manifest=%s"
                   % (name,
                      ["0x%x" % e for e in routine.entries],
                      ["0x%x" % e for e in record["entries"]]))
    if out or record["incomplete_ok"]:
        # Identity is wrong (structural checks would cascade) or the
        # routine contains a branch in a delay slot (walker coverage is
        # legitimately different): stop here.
        return out

    cfg = routine.control_flow_graph()
    if cfg.incomplete and not _expects_incomplete(record):
        out.append("incomplete:%s cfg marked incomplete" % name)

    out.extend(_check_leaders(cfg, record))
    out.extend(_check_transfers(cfg, record))
    out.extend(_check_calls(cfg, record))
    out.extend(_check_tables(cfg, record))
    out.extend(_check_liveness(routine, cfg, record))
    return out


def _expects_incomplete(record):
    # Only an unanalyzable indirect jump legitimately leaves the CFG
    # incomplete; the generator's tables all follow the paper idiom, so
    # nothing should.  (Kept as a hook: a future generator knob could
    # emit deliberately unanalyzable jumps.)
    return False


def _check_leaders(cfg, record):
    out = []
    for leader in record["leaders"]:
        if leader not in cfg.block_at:
            out.append("leader:%s no block at 0x%x"
                       % (record["name"], leader))
    return out


def _block_for_cti(cfg, addr):
    for block in cfg.blocks:
        if block.kind == BK_NORMAL and block.cti_addr == addr:
            return block
    return None


def _check_transfers(cfg, record):
    out = []
    name = record["name"]
    for transfer in record["transfers"]:
        src, dst, kind = transfer["src"], transfer["dst"], transfer["kind"]
        if kind == "cti-slot":
            continue  # only emitted in incomplete_ok routines
        block = _block_for_cti(cfg, src)
        if block is None:
            out.append("transfer:%s no CTI block at 0x%x" % (name, src))
            continue
        if kind == "tail":
            if not _has_escape(cfg, block, dst):
                out.append("transfer:%s tail 0x%x -> 0x%x not an escape"
                           % (name, src, dst))
            continue
        if not _reaches(block, dst, _KIND_EDGES[kind]):
            out.append("transfer:%s %s 0x%x -> 0x%x missing"
                       % (name, kind, src, dst))
    return out


def _has_escape(cfg, block, dst):
    frontier = [block]
    for _ in range(_PATH_DEPTH):
        next_frontier = []
        for node in frontier:
            for edge in node.succ:
                if edge.kind == EK_ESCAPE and edge.escape_target == dst:
                    return True
                next_frontier.append(edge.dst)
        frontier = next_frontier
    return False


def _reaches(block, dst, wanted_kinds):
    """True if *dst* heads a block within ``_PATH_DEPTH`` edges of
    *block* along a path containing an edge of a wanted kind."""
    frontier = [(block, False)]
    for _ in range(_PATH_DEPTH):
        next_frontier = []
        for node, seen_kind in frontier:
            for edge in node.succ:
                hit = seen_kind or edge.kind in wanted_kinds
                if hit and edge.dst.start == dst:
                    return True
                next_frontier.append((edge.dst, hit))
        frontier = next_frontier
    return False


def _check_calls(cfg, record):
    out = []
    entry_points = _known_entries(cfg.executable)
    for call in record["calls"]:
        block = _block_for_cti(cfg, call["src"])
        if block is None:
            out.append("call:%s no call block at 0x%x"
                       % (record["name"], call["src"]))
            continue
        if call["dst"] not in entry_points:
            out.append("call:%s target 0x%x is not a known entry"
                       % (record["name"], call["dst"]))
    return out


def _known_entries(executable):
    entries = set()
    for routine in _all_routines(executable):
        entries.update(routine.entries)
    return entries


def _check_tables(cfg, record):
    out = []
    name = record["name"]
    infos = {info.block.cti_addr: info for info in cfg.indirect_jumps}
    for table in record["tables"]:
        info = infos.get(table["jmp"])
        if info is None:
            out.append("table:%s no indirect jump at 0x%x"
                       % (name, table["jmp"]))
            continue
        if info.status != "table":
            out.append("table:%s jump at 0x%x resolved as %r"
                       % (name, table["jmp"], info.status))
            continue
        if info.table_addr != table["table"]:
            out.append("table:%s base 0x%x != 0x%x"
                       % (name, info.table_addr, table["table"]))
        if list(info.targets) != list(table["targets"]):
            out.append("table:%s targets %s != %s"
                       % (name,
                          ["0x%x" % t for t in info.targets],
                          ["0x%x" % t for t in table["targets"]]))
    return out


def _check_liveness(routine, cfg, record):
    truth = record["live_in"]
    if truth is None:
        return []
    entry_block = cfg.block_at.get(routine.start)
    if entry_block is None:
        return ["live:%s no block at entry" % record["name"]]
    analysis = cfg.live_registers().live_in[entry_block.id]
    missing = sorted(set(truth) - set(analysis))
    if missing:
        return ["live:%s registers %s truly live but reported dead"
                % (record["name"], missing)]
    return []
