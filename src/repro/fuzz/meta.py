"""Ground-truth ``.eel.meta`` tables and the metadata adversary.

Two jobs, same module because they share the manifest mapping:

* :func:`meta_from_manifest` turns a generated program's ground-truth
  manifest into a ``repro.meta/1`` table — the fuzz generator acting as
  a trusted producer (``repro fuzz --emit-meta``).  The manifest is
  built from the emitter's own bookkeeping, so a correct generator
  yields metadata the verify-and-trust checks accept.
* :func:`corrupt_meta` is the seeded adversary: it picks one mutation
  (shifted extent, dropped delay-slot CTI, a dispatch extent moved onto
  a data island, a stale text hash, ...) and applies it.  The campaign
  contract is *reject-or-caught*: every corrupted seed must either be
  rejected by the trust checks with a typed reason or flagged
  downstream by manifest checking / differential verification — a
  corrupted table that classifies ``clean`` is a silent wrong answer
  and fails the campaign.
"""

import random
from dataclasses import replace

from repro.binfmt.meta import (
    MetaDispatch,
    MetaRoutine,
    MetaTable,
    compute_text_hash,
)

# Every mutation kind the adversary can pick (see _MUTATORS below).
MUTATION_KINDS = ("stale-text-hash", "shift-extent", "drop-delay-cti",
                  "add-delay-cti", "dispatch-overlap-island",
                  "wrong-table-count", "drop-routine", "fake-entry",
                  "flip-hidden")


def meta_from_manifest(manifest, image):
    """A ``repro.meta/1`` table from a generated program's manifest.

    Hidden routines take the ``hidden_0x%x`` names discovery would
    assign, so a trust-hydrated analysis is indistinguishable from a
    discovered one.  The delay-CTI map comes from the manifest's
    ``cti-slot`` transfers: the slot (the word after the delayed
    branch) is what the consumer's exact scan must find.
    """
    routines = []
    tables = []
    delay_ctis = []
    islands = []
    for record in manifest["routines"]:
        name = ("hidden_0x%x" % record["start"] if record["hidden"]
                else record["name"])
        routines.append(MetaRoutine(name, record["start"], record["end"],
                                    tuple(record["entries"]),
                                    hidden=bool(record["hidden"])))
        for table in record["tables"]:
            tables.append(MetaDispatch(table["table"],
                                       len(table["targets"]),
                                       in_text=bool(table["in_text"])))
        for transfer in record["transfers"]:
            if transfer["kind"] == "cti-slot":
                delay_ctis.append(transfer["src"] + 4)
        for start, end in record["islands"]:
            islands.append((start, end))
    text = image.get_section(".text")
    return MetaTable(text.vaddr, text.size, compute_text_hash(image),
                     routines=tuple(sorted(routines,
                                           key=lambda r: r.start)),
                     tables=tuple(sorted(tables, key=lambda t: t.addr)),
                     delay_ctis=tuple(sorted(set(delay_ctis))),
                     islands=tuple(sorted(islands)))


# ----------------------------------------------------------------------
# The adversary
# ----------------------------------------------------------------------

def _mut_stale_text_hash(meta, rng):
    digest = bytearray(meta.text_sha256)
    digest[rng.randrange(len(digest))] ^= 0xFF
    return replace(meta, text_sha256=bytes(digest))


def _mut_shift_extent(meta, rng):
    if not meta.routines:
        return None
    index = rng.randrange(len(meta.routines))
    routines = list(meta.routines)
    victim = routines[index]
    # Growing the end by one word either overlaps the next routine or
    # walks off the end of .text — an extent lie either way.
    routines[index] = replace(victim, end=victim.end + 4)
    return replace(meta, routines=tuple(routines))


def _mut_drop_delay_cti(meta, rng):
    if not meta.delay_ctis:
        return None
    ctis = list(meta.delay_ctis)
    ctis.pop(rng.randrange(len(ctis)))
    return replace(meta, delay_ctis=tuple(ctis))


def _mut_add_delay_cti(meta, rng):
    # A routine's first word can never be a delay slot of a CTI in the
    # same extent, so claiming it is always a lie the scan refutes.
    for routine in meta.routines:
        if routine.start not in meta.delay_ctis:
            return replace(meta, delay_ctis=tuple(
                sorted(meta.delay_ctis + (routine.start,))))
    return None


def _mut_dispatch_overlap_island(meta, rng):
    if not meta.tables or not meta.islands:
        return None
    index = rng.randrange(len(meta.tables))
    island = meta.islands[rng.randrange(len(meta.islands))]
    tables = list(meta.tables)
    tables[index] = replace(tables[index], addr=island[0], in_text=True)
    return replace(meta, tables=tuple(tables))


def _mut_wrong_table_count(meta, rng):
    if not meta.tables:
        return None
    index = rng.randrange(len(meta.tables))
    tables = list(meta.tables)
    tables[index] = replace(tables[index],
                            count=tables[index].count + 1)
    return replace(meta, tables=tuple(tables))


def _mut_drop_routine(meta, rng):
    if len(meta.routines) < 2:
        return None
    index = rng.randrange(1, len(meta.routines))
    victim = meta.routines[index]
    routines = tuple(r for r in meta.routines if r is not victim)
    # Scrub the victim's delay CTIs and in-extent tables too: the point
    # of this mutation is a lie that *survives* the spot checks (extent
    # gaps are legal), so downstream divergence detection has to catch
    # the missing routine.
    ctis = tuple(a for a in meta.delay_ctis
                 if not victim.start <= a < victim.end)
    tables = tuple(t for t in meta.tables
                   if not (t.in_text
                           and victim.start <= t.addr < victim.end))
    return replace(meta, routines=routines, delay_ctis=ctis,
                   tables=tables)


def _mut_fake_entry(meta, rng):
    candidates = [i for i, r in enumerate(meta.routines)
                  if r.end - r.start >= 12]
    if not candidates:
        return None
    index = rng.choice(candidates)
    routines = list(meta.routines)
    victim = routines[index]
    words = (victim.end - victim.start) // 4
    for _ in range(8):
        entry = victim.start + 4 * rng.randrange(1, words)
        if entry not in victim.entries:
            routines[index] = replace(victim, entries=tuple(
                sorted(victim.entries + (entry,))))
            return replace(meta, routines=tuple(routines))
    return None


def _mut_flip_hidden(meta, rng):
    if not meta.routines:
        return None
    index = rng.randrange(len(meta.routines))
    routines = list(meta.routines)
    victim = routines[index]
    name = ("hidden_0x%x" % victim.start if not victim.hidden
            else "unhidden_0x%x" % victim.start)
    routines[index] = replace(victim, name=name, hidden=not victim.hidden)
    return replace(meta, routines=tuple(routines))


_MUTATORS = {
    "stale-text-hash": _mut_stale_text_hash,
    "shift-extent": _mut_shift_extent,
    "drop-delay-cti": _mut_drop_delay_cti,
    "add-delay-cti": _mut_add_delay_cti,
    "dispatch-overlap-island": _mut_dispatch_overlap_island,
    "wrong-table-count": _mut_wrong_table_count,
    "drop-routine": _mut_drop_routine,
    "fake-entry": _mut_fake_entry,
    "flip-hidden": _mut_flip_hidden,
}


def corrupt_meta(meta, seed):
    """Apply one seeded lie to *meta*; returns (mutated, kind).

    The rng walks the mutation kinds in a seed-dependent order and
    applies the first one applicable to this table (``stale-text-hash``
    is always applicable, so the walk always terminates with a lie).
    """
    rng = random.Random(seed ^ 0xC0_44A7)
    kinds = list(MUTATION_KINDS)
    rng.shuffle(kinds)
    for kind in kinds:
        mutated = _MUTATORS[kind](meta, rng)
        if mutated is not None:
            return mutated, kind
    raise AssertionError("stale-text-hash mutation cannot be inapplicable")
